// Dynamic HNSW: incremental insertion and logical deletion over a growing
// vector store — the paper's §6 "Challenges" calls real-time graph-index
// update a major open problem; HNSW's increment construction strategy is
// the natural substrate for it. Deletions are handled by tombstoning:
// deleted vertices still route (their edges stay navigable) but never
// enter result sets; Compact() rebuilds to reclaim them.
//
// Concurrency contract: mutation (Add/Remove/Compact) requires exclusive
// access, but SearchWith is const and touches no index state beyond reads,
// so any number of threads may search one *unchanging* DynamicHnsw
// concurrently with caller-owned scratch. The mutable serving layer
// (shard/mutable_shard.h) builds epoch snapshots on top of this: writers
// clone, mutate the clone, and publish it atomically while readers keep
// searching the old copy.
#ifndef WEAVESS_ALGORITHMS_DYNAMIC_HNSW_H_
#define WEAVESS_ALGORITHMS_DYNAMIC_HNSW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "algorithms/registry.h"
#include "core/budget.h"
#include "core/dataset.h"
#include "core/graph.h"
#include "core/index.h"
#include "core/neighbor.h"
#include "core/rng.h"
#include "core/search_context.h"
#include "core/visited_list.h"

namespace weavess {

class DynamicHnsw {
 public:
  struct Params {
    uint32_t m = 15;                // degree bound above layer 0 (M0 = 2M)
    uint32_t ef_construction = 100;
    uint64_t seed = 2024;
  };

  /// An empty index over `dim`-dimensional vectors.
  DynamicHnsw(uint32_t dim, const Params& params);

  /// Deep copy of the graph, store, and tombstones. The copy carries the
  /// same RNG state, so interleaving the same future Adds into original
  /// and copy produces identical structures — the property the epoch
  /// publication protocol relies on. Per-call scratch is not copied.
  DynamicHnsw(const DynamicHnsw& other);
  DynamicHnsw& operator=(const DynamicHnsw&) = delete;
  DynamicHnsw(DynamicHnsw&&) = default;
  DynamicHnsw& operator=(DynamicHnsw&&) = default;

  /// Inserts a vector; returns its id (ids are dense, insertion-ordered,
  /// and stable — deletion does not reassign them).
  uint32_t Add(const float* vector);

  /// Logically deletes id (idempotent). Deleted ids keep routing but are
  /// excluded from results. WEAVESS_CHECK-fails on out-of-range ids.
  void Remove(uint32_t id);

  bool IsDeleted(uint32_t id) const;

  /// k nearest *live* ids. Returns empty when the index is empty or all
  /// points are deleted. Convenience wrapper over SearchWith using scratch
  /// owned by the index; not safe to call concurrently on one instance.
  std::vector<uint32_t> Search(const float* query, const SearchParams& params,
                               QueryStats* stats = nullptr);

  /// Thread-compatible search against a fixed structure: const, uses only
  /// the caller's scratch (visited stamps sized to at least size()
  /// vertices). Honors SearchParams budgets including params.clock, so
  /// time-budget truncation is deterministic under VirtualClock exactly
  /// like the static routers.
  std::vector<uint32_t> SearchWith(SearchScratch& scratch, const float* query,
                                   const SearchParams& params,
                                   QueryStats* stats = nullptr) const;

  /// Stored vector for id (valid for dim() floats).
  const float* Vector(uint32_t id) const;

  /// Rebuilds the structure with tombstones physically removed. Returns
  /// the mapping new_id -> old_id. Invalidates all previous ids. The
  /// rebuild re-adds survivors in ascending old-id order with a fresh RNG
  /// seeded from Params::seed, so compacting equal states yields
  /// bit-identical structures (the WAL replay determinism contract of
  /// docs/MUTATION.md).
  std::vector<uint32_t> Compact();

  uint32_t size() const { return num_points_; }
  uint32_t live_size() const { return num_points_ - num_deleted_; }
  uint32_t num_deleted() const { return num_deleted_; }
  uint32_t dim() const { return dim_; }
  /// Level-0 adjacency of id (the navigable base layer).
  const std::vector<uint32_t>& BaseNeighbors(uint32_t id) const;
  /// Distance evaluations spent by construction so far (Add/Compact).
  uint64_t build_distance_evals() const { return build_evals_; }
  size_t IndexMemoryBytes() const;

 private:
  uint32_t GreedyStep(const float* query, uint32_t entry, uint32_t level,
                      uint64_t* ndc) const;
  // Best-first over one level; fills `pool`. Counts NDC/hops into the
  // pointers when given. When `budget` is non-null and trips, the walk
  // stops with best-so-far pool contents and sets `*truncated`.
  void SearchLevel(const float* query, uint32_t level, CandidatePool& pool,
                   VisitedList& visited, uint64_t* ndc, uint64_t* hops,
                   const SearchBudget* budget = nullptr,
                   bool* truncated = nullptr) const;
  void Connect(uint32_t point, uint32_t level,
               const std::vector<Neighbor>& selected);
  uint32_t DegreeBound(uint32_t level) const {
    return level == 0 ? 2 * params_.m : params_.m;
  }
  float Distance(const float* a, uint32_t id, uint64_t* ndc) const;

  uint32_t dim_;
  Params params_;
  double level_lambda_;
  std::vector<float> store_;               // row-major vectors
  std::vector<std::vector<std::vector<uint32_t>>> links_;
  std::vector<bool> deleted_;
  uint32_t num_points_ = 0;
  uint32_t num_deleted_ = 0;
  uint32_t entry_point_ = 0;
  uint32_t max_level_ = 0;
  Rng rng_;
  // Construction spend: Distance calls with no per-query counter are
  // build-side by construction (every search path threads a counter), so
  // they charge here. `mutable` keeps Distance const for the search path.
  mutable uint64_t build_evals_ = 0;
  // Construction-side visited stamps (grown geometrically, reused across
  // Adds) and the lazily sized scratch behind the Search wrapper.
  std::unique_ptr<VisitedList> visited_;
  std::unique_ptr<SearchScratch> scratch_;
};

/// AnnIndex adapter: builds a DynamicHnsw by inserting every dataset row in
/// order, then serves the standard immutable-index contract (const
/// SearchWith, materialized level-0 graph). Registered as "Dynamic:HNSW" so
/// the CLI/eval/bench stack can exercise the mutable substrate next to the
/// 17 static algorithms.
class DynamicHnswIndex : public AnnIndex {
 public:
  explicit DynamicHnswIndex(const DynamicHnsw::Params& params)
      : impl_(std::make_unique<DynamicHnsw>(1, params)), params_(params) {}

  void Build(const Dataset& data) override;
  std::vector<uint32_t> SearchWith(SearchScratch& scratch, const float* query,
                                   const SearchParams& params,
                                   QueryStats* stats = nullptr) const override;
  const Graph& graph() const override { return base_layer_; }
  size_t IndexMemoryBytes() const override {
    return impl_->IndexMemoryBytes();
  }
  BuildStats build_stats() const override { return build_stats_; }
  std::string name() const override { return "Dynamic:HNSW"; }

 private:
  std::unique_ptr<DynamicHnsw> impl_;
  DynamicHnsw::Params params_;
  Graph base_layer_;  // copy of level 0, exposed via graph()
  BuildStats build_stats_;
};

std::unique_ptr<AnnIndex> CreateDynamicHnsw(const AlgorithmOptions& options);

}  // namespace weavess

#endif  // WEAVESS_ALGORITHMS_DYNAMIC_HNSW_H_
