// fvecs / ivecs file I/O — the TEXMEX format of the paper's real datasets
// (SIFT1M, GIST1M, …): each vector is stored as a little-endian int32
// dimension followed by that many float32 (fvecs) or int32 (ivecs) values.
// With these readers the benchmarks can run on the original corpora when
// available; the synthetic stand-ins remain the offline default.
#ifndef WEAVESS_EVAL_IO_H_
#define WEAVESS_EVAL_IO_H_

#include <string>
#include <vector>

#include "core/dataset.h"
#include "eval/ground_truth.h"

namespace weavess {

/// Reads an .fvecs file into a Dataset. WEAVESS_CHECK-fails on malformed
/// input (inconsistent dimensions, truncated records). `max_vectors`
/// limits how many records are read (0 = all).
Dataset ReadFvecs(const std::string& path, uint32_t max_vectors = 0);

/// Writes a Dataset as .fvecs.
void WriteFvecs(const std::string& path, const Dataset& data);

/// Reads an .ivecs ground-truth file (one int32 id row per query).
GroundTruth ReadIvecs(const std::string& path, uint32_t max_rows = 0);

/// Writes ground truth as .ivecs.
void WriteIvecs(const std::string& path, const GroundTruth& truth);

}  // namespace weavess

#endif  // WEAVESS_EVAL_IO_H_
