// fvecs / ivecs file I/O — the TEXMEX format of the paper's real datasets
// (SIFT1M, GIST1M, …): each vector is stored as a little-endian int32
// dimension followed by that many float32 (fvecs) or int32 (ivecs) values.
// With these readers the benchmarks can run on the original corpora when
// available; the synthetic stand-ins remain the offline default.
//
// The readers are hardened against hostile or damaged files: every failure
// (missing file, truncated record, inconsistent or absurd dimension
// headers) is reported as a Status instead of aborting, and no allocation
// is sized from an unvalidated header field.
#ifndef WEAVESS_EVAL_IO_H_
#define WEAVESS_EVAL_IO_H_

#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/status.h"
#include "eval/ground_truth.h"

namespace weavess {

/// Upper bound on a per-record dimension / row-length header. A hostile
/// int32 header beyond this is rejected as corruption before any
/// allocation is attempted (2^16 floats = 256 KiB per row, far above any
/// real embedding width).
inline constexpr int32_t kMaxVectorDim = 1 << 16;

/// Reads an .fvecs file into a Dataset. Returns kIOError if the file
/// cannot be opened/read and kCorruption (with a byte-offset diagnostic)
/// on malformed input: non-positive or oversized dimension headers,
/// inconsistent dimensions, or truncated records whose header promises
/// more bytes than the file holds. `max_vectors` limits how many records
/// are read (0 = all).
StatusOr<Dataset> ReadFvecs(const std::string& path, uint32_t max_vectors = 0);

/// Writes a Dataset as .fvecs.
Status WriteFvecs(const std::string& path, const Dataset& data);

/// Reads an .ivecs ground-truth file (one int32 id row per query), with
/// the same validation as ReadFvecs.
StatusOr<GroundTruth> ReadIvecs(const std::string& path,
                                uint32_t max_rows = 0);

/// Writes ground truth as .ivecs.
Status WriteIvecs(const std::string& path, const GroundTruth& truth);

}  // namespace weavess

#endif  // WEAVESS_EVAL_IO_H_
