#include "eval/table.h"

#include <algorithm>
#include <cstdio>

#include "core/check.h"

namespace weavess {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WEAVESS_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  WEAVESS_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&widths](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%s%-*s", c == 0 ? "" : "  ",
                  static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  for (size_t i = 0; i + 2 < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string TablePrinter::Int(uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string TablePrinter::Secs(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3fs", seconds);
  return buffer;
}

std::string TablePrinter::Megabytes(size_t bytes) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2fMB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buffer;
}

}  // namespace weavess
