// Search-performance evaluation: the metric bundle of §5.1 — Recall@k, QPS,
// Speedup (= |S| / NDC), candidate-set size CS, query path length PL, and a
// peak-memory estimate MO — plus sweep drivers for the QPS-vs-recall and
// Speedup-vs-recall tradeoff curves of Figures 7/8.
#ifndef WEAVESS_EVAL_EVALUATOR_H_
#define WEAVESS_EVAL_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/index.h"
#include "eval/ground_truth.h"
#include "search/engine.h"
#include "search/serving.h"

namespace weavess {

struct SearchPoint {
  SearchParams params;       // the swept parameter values
  double recall = 0.0;       // mean Recall@k
  double qps = 0.0;          // queries / wall-second
  double mean_ndc = 0.0;     // mean distance evaluations per query
  double speedup = 0.0;      // |S| / mean_ndc
  double mean_hops = 0.0;    // query path length PL
  uint32_t truncated_queries = 0;  // queries stopped by a search budget
};

/// Runs every query once under `params` through `engine` (QPS reflects the
/// engine's thread count; recall/NDC/PL are thread-count invariant).
/// `dataset_size` is |S| in Speedup = |S| / NDC (§5.1): the cardinality of
/// the dataset being searched. Pass base.size(); 0 falls back to the
/// engine's graph vertex count, which coincides with |S| only for flat
/// single-layer indexes over the full dataset.
SearchPoint EvaluateSearch(const SearchEngine& engine, const Dataset& queries,
                           const GroundTruth& truth,
                           const SearchParams& params,
                           uint32_t dataset_size = 0);

/// Single-threaded convenience overload (a 1-thread engine per call).
SearchPoint EvaluateSearch(AnnIndex& index, const Dataset& queries,
                           const GroundTruth& truth,
                           const SearchParams& params,
                           uint32_t dataset_size = 0);

/// Sweeps the candidate-pool size L over `pool_sizes`, producing one curve
/// point per value (k fixed). This is the paper's tradeoff-curve driver.
/// `base_params` carries the non-swept knobs (epsilon, search budgets) into
/// every point.
std::vector<SearchPoint> SweepPoolSizes(
    const SearchEngine& engine, const Dataset& queries,
    const GroundTruth& truth, uint32_t k,
    const std::vector<uint32_t>& pool_sizes,
    const SearchParams& base_params = {}, uint32_t dataset_size = 0);

std::vector<SearchPoint> SweepPoolSizes(
    AnnIndex& index, const Dataset& queries, const GroundTruth& truth,
    uint32_t k, const std::vector<uint32_t>& pool_sizes,
    const SearchParams& base_params = {}, uint32_t dataset_size = 0);

/// One overload-aware sweep point: the recall contract is evaluated over
/// completed queries only, next to the shed/degraded accounting that shows
/// what defending it cost (docs/SERVING.md).
struct ServingPoint {
  SearchParams params;
  ServingReport report;
  /// Queries that completed (== report.completed, hoisted so consumers can
  /// tell "recall was 0.0" from "no query completed, recall is undefined"
  /// without digging into the report).
  uint64_t completed = 0;
  double recall_completed = 0.0;  // mean Recall@k over completed queries
  double p50_latency_us = 0.0;    // completed-query latency percentiles
  double p99_latency_us = 0.0;
};

/// One-line JSON object for a ServingPoint. The statistics that are
/// undefined when zero queries completed — recall_completed, p50, p99 —
/// are emitted as JSON null in that case, never a misleading 0.0 (the
/// all-rejected drain-mode ambiguity).
std::string ServingPointJson(const ServingPoint& point);

/// Serves every query once through `serving` as one burst (ServeBatch) with
/// `request` carrying the deadline and full-quality params. Queries shed by
/// admission or deadline score zero recall nowhere — they are excluded from
/// recall_completed and counted in the report instead.
ServingPoint EvaluateServing(ServingEngine& serving, const Dataset& queries,
                             const GroundTruth& truth,
                             const RequestOptions& request);

/// Smallest pool size reaching `target_recall` (the CS metric of Table 5),
/// found by sweeping `pool_sizes` in ascending order. Returns the point for
/// the first size that reaches the target, or the last point (recall
/// "ceiling") if none does — mirroring the paper's "CS+" entries.
struct CandidateSizeResult {
  SearchPoint point;
  bool reached_target = false;
};
CandidateSizeResult FindCandidateSize(AnnIndex& index, const Dataset& queries,
                                      const GroundTruth& truth, uint32_t k,
                                      double target_recall,
                                      const std::vector<uint32_t>& pool_sizes);

/// One row of a shard-count sweep (bench_sharding, `weavess_cli eval
/// --shard-sweep`): how partitioned build and scatter-gather search trade
/// off as the shard count grows (docs/SHARDING.md).
struct ShardingPoint {
  uint32_t num_shards = 0;
  /// Fixed-params evaluation of the sharded index (recall/QPS/NDC/PL).
  SearchPoint search;
  double build_seconds = 0.0;
  uint64_t build_distance_evals = 0;
  size_t index_bytes = 0;
};

/// Builds "Sharded:<algorithm>" once per entry of `shard_counts` (same
/// options apart from num_shards) and evaluates each at fixed `params`
/// through a single-threaded engine. `algorithm` is a base registry name;
/// a shard count of 1 is the unsharded baseline in the same harness.
std::vector<ShardingPoint> EvaluateSharding(
    const std::string& algorithm, const AlgorithmOptions& options,
    const Dataset& base, const Dataset& queries, const GroundTruth& truth,
    const std::vector<uint32_t>& shard_counts, const SearchParams& params);

/// Peak-memory estimate during search (MO): vectors + index + per-query
/// scratch. A deliberate estimate, not an RSS probe — it is reproducible
/// and matches what the paper's MO column tracks across algorithms.
size_t EstimateSearchMemory(const AnnIndex& index, const Dataset& base,
                            const SearchParams& params);

/// Default pool-size ladder used by benches (16 .. 4096, roughly log-spaced).
const std::vector<uint32_t>& DefaultPoolLadder();

}  // namespace weavess

#endif  // WEAVESS_EVAL_EVALUATOR_H_
