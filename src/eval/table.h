// Fixed-width console table printing for the benchmark harnesses: every
// bench binary reproduces a paper table/figure as rows printed through this.
#ifndef WEAVESS_EVAL_TABLE_H_
#define WEAVESS_EVAL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace weavess {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with per-column auto width to stdout.
  void Print() const;

  // Cell formatting helpers.
  static std::string Fixed(double value, int decimals = 2);
  static std::string Int(uint64_t value);
  /// Seconds with ms resolution, e.g. "1.234s".
  static std::string Secs(double seconds);
  /// Bytes as human-readable MB with two decimals.
  static std::string Megabytes(size_t bytes);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace weavess

#endif  // WEAVESS_EVAL_TABLE_H_
