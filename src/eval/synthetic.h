// Workload synthesis. Two layers:
//  1. The parametric generator behind the paper's 12 synthetic datasets
//     (Appendix G / Table 10): Gaussian clusters with controllable
//     dimension, cardinality, cluster count and per-cluster standard
//     deviation (SD) — SD is the paper's dataset-difficulty knob.
//  2. Stand-ins for the eight real-world datasets of Table 3: same
//     dimensionality as the originals, cardinality scaled to laptop size,
//     hardness (cluster structure + SD) calibrated so the measured local
//     intrinsic dimensionality (LID) ordering matches the paper's.
#ifndef WEAVESS_EVAL_SYNTHETIC_H_
#define WEAVESS_EVAL_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/rng.h"

namespace weavess {

struct SyntheticSpec {
  uint32_t dim = 32;
  uint32_t num_base = 10000;
  uint32_t num_queries = 100;
  uint32_t num_clusters = 10;
  /// Standard deviation of the Gaussian around each cluster center;
  /// centers are uniform in [0, center_range]^dim, so larger SD (or a
  /// smaller range) → more overlap → harder dataset (paper Appendix J).
  float stddev = 5.0f;
  /// Side length of the hypercube cluster centers are drawn from. The
  /// paper leaves this unspecified; 100 gives well-separated clusters at
  /// SD 5, while ~30 reproduces the partial overlap its complexity and
  /// scalability fits imply.
  float center_range = 100.0f;
  uint64_t seed = 42;
};

struct Workload {
  std::string name;
  Dataset base;
  Dataset queries;
};

/// Gaussian-mixture workload per the spec. Queries are fresh draws from the
/// same mixture (they are not base points, matching ANNS evaluation).
Workload GenerateSynthetic(const SyntheticSpec& spec,
                           const std::string& name = "synthetic");

/// Names of the eight real-world stand-ins, in Table 3 order:
/// UQ-V, Msong, Audio, SIFT1M, GIST1M, Crawl, GloVe, Enron.
const std::vector<std::string>& StandInNames();

/// Builds the stand-in for `name` (see StandInNames). `scale` multiplies
/// the base cardinality (scale 1 ≈ 8–12k points, laptop-sized).
Workload MakeStandIn(const std::string& name, double scale = 1.0);

/// Local intrinsic dimensionality via the Levina–Bickel MLE on the
/// distances to each sampled point's k nearest neighbors — the hardness
/// score LID reported in Table 3.
double EstimateLid(const Dataset& data, uint32_t sample_size = 200,
                   uint32_t k = 20, uint64_t seed = 7);

/// Zipf(s) sampler over ranks 0..n-1: P(rank r) ∝ 1/(r+1)^s. s = 0 is
/// uniform; s ≈ 1 is the classic web/query-log skew. Deterministic for a
/// fixed seed (core/rng.h), via binary search on the precomputed CDF.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double s, uint64_t seed);

  /// Next rank, in [0, n). Hot ranks (small values) dominate as s grows.
  uint32_t Next();

  uint32_t n() const { return static_cast<uint32_t>(cdf_.size()); }
  double s() const { return s_; }

 private:
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r), cdf_.back() == 1
  double s_;
  Rng rng_;
};

/// A skewed serving workload: `count` queries resampled from `queries`
/// with Zipf(s) popularity over the query rows. With s = 0 every row is
/// equally likely; realistic serving traffic (bench_overload,
/// bench_replication) uses s ≈ 1, where a handful of hot queries dominate
/// — the regime that stresses per-replica cache affinity and makes routing
/// hot spots visible. Row pointers alias `queries`; it must outlive them.
std::vector<const float*> MakeSkewedQueries(const Dataset& queries,
                                            uint32_t count, double s,
                                            uint64_t seed);

}  // namespace weavess

#endif  // WEAVESS_EVAL_SYNTHETIC_H_
