// Exact k-NN ground truth by linear scan (how the paper's ground-truth
// files are produced, §2.2), and the Recall@k accuracy metric.
#ifndef WEAVESS_EVAL_GROUND_TRUTH_H_
#define WEAVESS_EVAL_GROUND_TRUTH_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"

namespace weavess {

/// ground_truth[q] = ids of the k exact nearest base vectors of query q,
/// ascending by distance.
using GroundTruth = std::vector<std::vector<uint32_t>>;

/// `num_threads > 1` parallelizes over queries; results are identical
/// regardless of thread count.
GroundTruth ComputeGroundTruth(const Dataset& base, const Dataset& queries,
                               uint32_t k, uint32_t num_threads = 1);

/// Recall@k = |result ∩ truth_k| / k over the first k entries of each.
double Recall(const std::vector<uint32_t>& result,
              const std::vector<uint32_t>& truth, uint32_t k);

}  // namespace weavess

#endif  // WEAVESS_EVAL_GROUND_TRUTH_H_
