#include "eval/io.h"

#include <cstdint>
#include <cstdio>
#include <memory>

#include "core/check.h"

namespace weavess {

namespace {

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file != nullptr) std::fclose(file);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr OpenOrDie(const std::string& path, const char* mode) {
  FilePtr file(std::fopen(path.c_str(), mode));
  WEAVESS_CHECK(file != nullptr && "cannot open file");
  return file;
}

}  // namespace

Dataset ReadFvecs(const std::string& path, uint32_t max_vectors) {
  FilePtr file = OpenOrDie(path, "rb");
  std::vector<float> payload;
  uint32_t dim = 0;
  uint32_t count = 0;
  while (max_vectors == 0 || count < max_vectors) {
    int32_t record_dim = 0;
    if (std::fread(&record_dim, sizeof(record_dim), 1, file.get()) != 1) {
      break;  // clean EOF
    }
    WEAVESS_CHECK(record_dim > 0);
    if (dim == 0) {
      dim = static_cast<uint32_t>(record_dim);
    }
    WEAVESS_CHECK(static_cast<uint32_t>(record_dim) == dim);
    const size_t offset = payload.size();
    payload.resize(offset + dim);
    WEAVESS_CHECK(std::fread(payload.data() + offset, sizeof(float), dim,
                             file.get()) == dim);
    ++count;
  }
  WEAVESS_CHECK(count > 0 && "empty fvecs file");
  return Dataset(count, dim, std::move(payload));
}

void WriteFvecs(const std::string& path, const Dataset& data) {
  FilePtr file = OpenOrDie(path, "wb");
  const auto dim = static_cast<int32_t>(data.dim());
  for (uint32_t i = 0; i < data.size(); ++i) {
    WEAVESS_CHECK(std::fwrite(&dim, sizeof(dim), 1, file.get()) == 1);
    WEAVESS_CHECK(std::fwrite(data.Row(i), sizeof(float), data.dim(),
                              file.get()) == data.dim());
  }
}

GroundTruth ReadIvecs(const std::string& path, uint32_t max_rows) {
  FilePtr file = OpenOrDie(path, "rb");
  GroundTruth truth;
  while (max_rows == 0 || truth.size() < max_rows) {
    int32_t row_len = 0;
    if (std::fread(&row_len, sizeof(row_len), 1, file.get()) != 1) break;
    WEAVESS_CHECK(row_len > 0);
    std::vector<int32_t> row(row_len);
    WEAVESS_CHECK(std::fread(row.data(), sizeof(int32_t),
                             static_cast<size_t>(row_len),
                             file.get()) == static_cast<size_t>(row_len));
    std::vector<uint32_t> ids(row.begin(), row.end());
    truth.push_back(std::move(ids));
  }
  WEAVESS_CHECK(!truth.empty() && "empty ivecs file");
  return truth;
}

void WriteIvecs(const std::string& path, const GroundTruth& truth) {
  FilePtr file = OpenOrDie(path, "wb");
  for (const auto& row : truth) {
    const auto len = static_cast<int32_t>(row.size());
    WEAVESS_CHECK(std::fwrite(&len, sizeof(len), 1, file.get()) == 1);
    for (uint32_t id : row) {
      const auto value = static_cast<int32_t>(id);
      WEAVESS_CHECK(std::fwrite(&value, sizeof(value), 1, file.get()) == 1);
    }
  }
}

}  // namespace weavess
