#include "eval/io.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace weavess {

namespace {

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file != nullptr) std::fclose(file);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

StatusOr<FilePtr> OpenFile(const std::string& path, const char* mode) {
  FilePtr file(std::fopen(path.c_str(), mode));
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  return file;
}

/// Size of an open file via fseek/ftell, restoring the read position.
StatusOr<uint64_t> FileSize(std::FILE* file, const std::string& path) {
  if (std::fseek(file, 0, SEEK_END) != 0) {
    return Status::IOError("cannot seek in '" + path + "'");
  }
  const long size = std::ftell(file);
  if (size < 0 || std::fseek(file, 0, SEEK_SET) != 0) {
    return Status::IOError("cannot determine size of '" + path + "'");
  }
  return static_cast<uint64_t>(size);
}

Status TruncatedRecord(const std::string& path, uint64_t offset,
                       uint64_t needed, uint64_t available) {
  return Status::Corruption(
      "truncated record in '" + path + "' at byte offset " +
      std::to_string(offset) + ": header promises " + std::to_string(needed) +
      " payload bytes but only " + std::to_string(available) + " remain");
}

/// Validates a per-record int32 dimension/length header against the
/// overflow hazard: hostile values must never feed an allocation.
Status CheckDimHeader(const std::string& path, uint64_t offset,
                      int32_t value) {
  if (value <= 0 || value > kMaxVectorDim) {
    return Status::Corruption(
        "invalid dimension header " + std::to_string(value) + " in '" + path +
        "' at byte offset " + std::to_string(offset) + " (must be in [1, " +
        std::to_string(kMaxVectorDim) + "])");
  }
  return Status::OK();
}

}  // namespace

StatusOr<Dataset> ReadFvecs(const std::string& path, uint32_t max_vectors) {
  WEAVESS_ASSIGN_OR_RETURN(FilePtr file, OpenFile(path, "rb"));
  WEAVESS_ASSIGN_OR_RETURN(const uint64_t file_size,
                           FileSize(file.get(), path));
  std::vector<float> payload;
  uint32_t dim = 0;
  uint32_t count = 0;
  uint64_t offset = 0;
  while (max_vectors == 0 || count < max_vectors) {
    int32_t record_dim = 0;
    if (std::fread(&record_dim, sizeof(record_dim), 1, file.get()) != 1) {
      if (std::ferror(file.get()) != 0) {
        return Status::IOError("read failed in '" + path + "' at byte offset " +
                               std::to_string(offset));
      }
      break;  // clean EOF
    }
    WEAVESS_RETURN_IF_ERROR(CheckDimHeader(path, offset, record_dim));
    if (dim == 0) {
      dim = static_cast<uint32_t>(record_dim);
      // Record count bound from the actual file size: reserve exactly what
      // a well-formed file can hold, so a hostile header cannot force an
      // oversized allocation.
      const uint64_t record_bytes = 4 + static_cast<uint64_t>(dim) * 4;
      uint64_t max_records = file_size / record_bytes;
      if (max_vectors > 0 && max_vectors < max_records) {
        max_records = max_vectors;
      }
      payload.reserve(static_cast<size_t>(max_records) * dim);
    }
    if (static_cast<uint32_t>(record_dim) != dim) {
      return Status::Corruption(
          "inconsistent dimension in '" + path + "' at byte offset " +
          std::to_string(offset) + ": record has " +
          std::to_string(record_dim) + ", file started with " +
          std::to_string(dim));
    }
    const uint64_t needed = static_cast<uint64_t>(dim) * 4;
    if (offset + 4 + needed > file_size) {
      return TruncatedRecord(path, offset, needed, file_size - offset - 4);
    }
    const size_t old_size = payload.size();
    payload.resize(old_size + dim);
    if (std::fread(payload.data() + old_size, sizeof(float), dim,
                   file.get()) != dim) {
      return Status::IOError("read failed in '" + path + "' at byte offset " +
                             std::to_string(offset + 4));
    }
    offset += 4 + needed;
    ++count;
  }
  if (count == 0) {
    return Status::Corruption("empty fvecs file '" + path + "'");
  }
  return Dataset(count, dim, std::move(payload));
}

Status WriteFvecs(const std::string& path, const Dataset& data) {
  WEAVESS_ASSIGN_OR_RETURN(FilePtr file, OpenFile(path, "wb"));
  const auto dim = static_cast<int32_t>(data.dim());
  for (uint32_t i = 0; i < data.size(); ++i) {
    if (std::fwrite(&dim, sizeof(dim), 1, file.get()) != 1 ||
        std::fwrite(data.Row(i), sizeof(float), data.dim(), file.get()) !=
            data.dim()) {
      return Status::IOError("write failed to '" + path +
                             "': " + std::strerror(errno));
    }
  }
  std::FILE* raw = file.release();
  if (std::fclose(raw) != 0) {
    return Status::IOError("close failed for '" + path +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

StatusOr<GroundTruth> ReadIvecs(const std::string& path, uint32_t max_rows) {
  WEAVESS_ASSIGN_OR_RETURN(FilePtr file, OpenFile(path, "rb"));
  WEAVESS_ASSIGN_OR_RETURN(const uint64_t file_size,
                           FileSize(file.get(), path));
  GroundTruth truth;
  uint64_t offset = 0;
  while (max_rows == 0 || truth.size() < max_rows) {
    int32_t row_len = 0;
    if (std::fread(&row_len, sizeof(row_len), 1, file.get()) != 1) {
      if (std::ferror(file.get()) != 0) {
        return Status::IOError("read failed in '" + path + "' at byte offset " +
                               std::to_string(offset));
      }
      break;  // clean EOF
    }
    WEAVESS_RETURN_IF_ERROR(CheckDimHeader(path, offset, row_len));
    const uint64_t needed = static_cast<uint64_t>(row_len) * 4;
    if (offset + 4 + needed > file_size) {
      return TruncatedRecord(path, offset, needed, file_size - offset - 4);
    }
    std::vector<int32_t> row(static_cast<size_t>(row_len));
    if (std::fread(row.data(), sizeof(int32_t), row.size(), file.get()) !=
        row.size()) {
      return Status::IOError("read failed in '" + path + "' at byte offset " +
                             std::to_string(offset + 4));
    }
    std::vector<uint32_t> ids(row.begin(), row.end());
    truth.push_back(std::move(ids));
    offset += 4 + needed;
  }
  if (truth.empty()) {
    return Status::Corruption("empty ivecs file '" + path + "'");
  }
  return truth;
}

Status WriteIvecs(const std::string& path, const GroundTruth& truth) {
  WEAVESS_ASSIGN_OR_RETURN(FilePtr file, OpenFile(path, "wb"));
  for (const auto& row : truth) {
    const auto len = static_cast<int32_t>(row.size());
    if (std::fwrite(&len, sizeof(len), 1, file.get()) != 1) {
      return Status::IOError("write failed to '" + path +
                             "': " + std::strerror(errno));
    }
    for (uint32_t id : row) {
      const auto value = static_cast<int32_t>(id);
      if (std::fwrite(&value, sizeof(value), 1, file.get()) != 1) {
        return Status::IOError("write failed to '" + path +
                               "': " + std::strerror(errno));
      }
    }
  }
  std::FILE* raw = file.release();
  if (std::fclose(raw) != 0) {
    return Status::IOError("close failed for '" + path +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace weavess
