#include "eval/evaluator.h"

#include "core/check.h"
#include "core/timer.h"

namespace weavess {

SearchPoint EvaluateSearch(AnnIndex& index, const Dataset& queries,
                           const GroundTruth& truth,
                           const SearchParams& params) {
  WEAVESS_CHECK(queries.size() == truth.size());
  WEAVESS_CHECK(queries.size() > 0);
  SearchPoint point;
  point.params = params;
  double recall_sum = 0.0;
  uint64_t ndc_sum = 0;
  uint64_t hop_sum = 0;
  Timer timer;
  for (uint32_t q = 0; q < queries.size(); ++q) {
    QueryStats stats;
    const std::vector<uint32_t> result =
        index.Search(queries.Row(q), params, &stats);
    recall_sum += Recall(result, truth[q], params.k);
    ndc_sum += stats.distance_evals;
    hop_sum += stats.hops;
    if (stats.truncated) ++point.truncated_queries;
  }
  const double seconds = timer.Seconds();
  const double n = queries.size();
  point.recall = recall_sum / n;
  point.qps = seconds > 0.0 ? n / seconds : 0.0;
  point.mean_ndc = static_cast<double>(ndc_sum) / n;
  point.speedup = point.mean_ndc > 0.0
                      ? static_cast<double>(index.graph().size()) /
                            point.mean_ndc
                      : 0.0;
  point.mean_hops = static_cast<double>(hop_sum) / n;
  return point;
}

std::vector<SearchPoint> SweepPoolSizes(
    AnnIndex& index, const Dataset& queries, const GroundTruth& truth,
    uint32_t k, const std::vector<uint32_t>& pool_sizes,
    const SearchParams& base_params) {
  std::vector<SearchPoint> points;
  points.reserve(pool_sizes.size());
  for (uint32_t pool : pool_sizes) {
    SearchParams params = base_params;
    params.k = k;
    params.pool_size = pool;
    points.push_back(EvaluateSearch(index, queries, truth, params));
  }
  return points;
}

CandidateSizeResult FindCandidateSize(
    AnnIndex& index, const Dataset& queries, const GroundTruth& truth,
    uint32_t k, double target_recall,
    const std::vector<uint32_t>& pool_sizes) {
  CandidateSizeResult result;
  for (uint32_t pool : pool_sizes) {
    SearchParams params;
    params.k = k;
    params.pool_size = pool;
    result.point = EvaluateSearch(index, queries, truth, params);
    if (result.point.recall >= target_recall) {
      result.reached_target = true;
      break;
    }
  }
  return result;
}

size_t EstimateSearchMemory(const AnnIndex& index, const Dataset& base,
                            const SearchParams& params) {
  // Vectors + graph/aux index + visited stamps + candidate pool.
  return base.MemoryBytes() + index.IndexMemoryBytes() +
         base.size() * sizeof(uint32_t) +
         static_cast<size_t>(params.pool_size) * sizeof(uint64_t);
}

const std::vector<uint32_t>& DefaultPoolLadder() {
  static const std::vector<uint32_t>* const kLadder =
      new std::vector<uint32_t>{10,  16,  24,  36,  54,   81,   120,  180,
                                270, 400, 600, 900, 1350, 2000, 3000, 4500};
  return *kLadder;
}

}  // namespace weavess
