#include "eval/evaluator.h"

#include <algorithm>
#include <cstdio>

#include "algorithms/registry.h"
#include "core/check.h"
#include "core/timer.h"
#include "obs/metrics.h"

namespace weavess {

ServingPoint EvaluateServing(ServingEngine& serving, const Dataset& queries,
                             const GroundTruth& truth,
                             const RequestOptions& request) {
  WEAVESS_CHECK(queries.size() == truth.size());
  ServingPoint point;
  point.params = request.params;
  const ServeBatchResult batch = serving.ServeBatch(queries, request);
  point.report = batch.report;
  double recall_sum = 0.0;
  std::vector<uint64_t> latencies;
  latencies.reserve(batch.outcomes.size());
  for (uint32_t q = 0; q < queries.size(); ++q) {
    const ServeOutcome& out = batch.outcomes[q];
    if (!out.status.ok()) continue;
    recall_sum += Recall(out.ids, truth[q], request.params.k);
    latencies.push_back(out.latency_us);
  }
  point.completed = batch.report.completed;
  WEAVESS_CHECK(point.completed == latencies.size());
  if (!latencies.empty()) {
    point.recall_completed = recall_sum / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    point.p50_latency_us = NearestRankPercentile(latencies, 0.5);
    point.p99_latency_us = NearestRankPercentile(latencies, 0.99);
  }
  return point;
}

std::string ServingPointJson(const ServingPoint& point) {
  std::string out = "{\"pool_size\":" + std::to_string(point.params.pool_size);
  out += ",\"submitted\":" + std::to_string(point.report.submitted);
  out += ",\"completed\":" + std::to_string(point.completed);
  out += ",\"shed_overload\":" + std::to_string(point.report.shed_overload);
  out += ",\"shed_deadline\":" + std::to_string(point.report.shed_deadline);
  out += ",\"failed\":" + std::to_string(point.report.failed);
  out += ",\"degraded\":" + std::to_string(point.report.degraded);
  out += ",\"max_tier\":" + std::to_string(point.report.max_tier);
  if (point.completed == 0) {
    // Undefined, not zero: nothing completed, so there is no recall or
    // latency distribution to report.
    out += ",\"recall_completed\":null,\"p50_latency_us\":null,"
           "\"p99_latency_us\":null}";
  } else {
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
                  ",\"recall_completed\":%.6f,\"p50_latency_us\":%.1f,"
                  "\"p99_latency_us\":%.1f}",
                  point.recall_completed, point.p50_latency_us,
                  point.p99_latency_us);
    out += buffer;
  }
  return out;
}

SearchPoint EvaluateSearch(const SearchEngine& engine, const Dataset& queries,
                           const GroundTruth& truth,
                           const SearchParams& params,
                           uint32_t dataset_size) {
  WEAVESS_CHECK(queries.size() == truth.size());
  WEAVESS_CHECK(queries.size() > 0);
  SearchPoint point;
  point.params = params;
  const BatchResult batch = engine.SearchBatch(queries, params);
  double recall_sum = 0.0;
  for (uint32_t q = 0; q < queries.size(); ++q) {
    recall_sum += Recall(batch.ids[q], truth[q], params.k);
  }
  const double n = queries.size();
  point.recall = recall_sum / n;
  point.qps = batch.totals.wall_seconds > 0.0
                  ? n / batch.totals.wall_seconds
                  : 0.0;
  point.mean_ndc = static_cast<double>(batch.totals.distance_evals) / n;
  // Speedup = |S| / NDC (§5.1): the numerator is the dataset cardinality —
  // the cost of the linear scan being beaten — not the graph's vertex
  // count, which can diverge from |S| for layered or composed graphs.
  const uint32_t cardinality =
      dataset_size > 0 ? dataset_size : engine.index().graph().size();
  point.speedup = point.mean_ndc > 0.0
                      ? static_cast<double>(cardinality) / point.mean_ndc
                      : 0.0;
  point.mean_hops = static_cast<double>(batch.totals.hops) / n;
  point.truncated_queries = batch.totals.truncated_queries;
  return point;
}

SearchPoint EvaluateSearch(AnnIndex& index, const Dataset& queries,
                           const GroundTruth& truth,
                           const SearchParams& params,
                           uint32_t dataset_size) {
  const SearchEngine engine(index, /*num_threads=*/1);
  return EvaluateSearch(engine, queries, truth, params, dataset_size);
}

std::vector<SearchPoint> SweepPoolSizes(
    const SearchEngine& engine, const Dataset& queries,
    const GroundTruth& truth, uint32_t k,
    const std::vector<uint32_t>& pool_sizes,
    const SearchParams& base_params, uint32_t dataset_size) {
  std::vector<SearchPoint> points;
  points.reserve(pool_sizes.size());
  for (uint32_t pool : pool_sizes) {
    SearchParams params = base_params;
    params.k = k;
    params.pool_size = pool;
    points.push_back(
        EvaluateSearch(engine, queries, truth, params, dataset_size));
  }
  return points;
}

std::vector<SearchPoint> SweepPoolSizes(
    AnnIndex& index, const Dataset& queries, const GroundTruth& truth,
    uint32_t k, const std::vector<uint32_t>& pool_sizes,
    const SearchParams& base_params, uint32_t dataset_size) {
  const SearchEngine engine(index, /*num_threads=*/1);
  return SweepPoolSizes(engine, queries, truth, k, pool_sizes, base_params,
                        dataset_size);
}

CandidateSizeResult FindCandidateSize(
    AnnIndex& index, const Dataset& queries, const GroundTruth& truth,
    uint32_t k, double target_recall,
    const std::vector<uint32_t>& pool_sizes) {
  CandidateSizeResult result;
  for (uint32_t pool : pool_sizes) {
    SearchParams params;
    params.k = k;
    params.pool_size = pool;
    result.point = EvaluateSearch(index, queries, truth, params);
    if (result.point.recall >= target_recall) {
      result.reached_target = true;
      break;
    }
  }
  return result;
}

std::vector<ShardingPoint> EvaluateSharding(
    const std::string& algorithm, const AlgorithmOptions& options,
    const Dataset& base, const Dataset& queries, const GroundTruth& truth,
    const std::vector<uint32_t>& shard_counts, const SearchParams& params) {
  std::vector<ShardingPoint> points;
  points.reserve(shard_counts.size());
  for (uint32_t num_shards : shard_counts) {
    AlgorithmOptions shard_options = options;
    shard_options.num_shards = num_shards;
    auto index = CreateAlgorithm("Sharded:" + algorithm, shard_options);
    index->Build(base);
    ShardingPoint point;
    point.num_shards = num_shards;
    point.build_seconds = index->build_stats().seconds;
    point.build_distance_evals = index->build_stats().distance_evals;
    point.index_bytes = index->IndexMemoryBytes();
    point.search = EvaluateSearch(*index, queries, truth, params,
                                  base.size());
    points.push_back(std::move(point));
  }
  return points;
}

size_t EstimateSearchMemory(const AnnIndex& index, const Dataset& base,
                            const SearchParams& params) {
  // Vectors + graph/aux index + visited stamps + candidate pool.
  return base.MemoryBytes() + index.IndexMemoryBytes() +
         base.size() * sizeof(uint32_t) +
         static_cast<size_t>(params.pool_size) * sizeof(uint64_t);
}

const std::vector<uint32_t>& DefaultPoolLadder() {
  static const std::vector<uint32_t>* const kLadder =
      new std::vector<uint32_t>{10,  16,  24,  36,  54,   81,   120,  180,
                                270, 400, 600, 900, 1350, 2000, 3000, 4500};
  return *kLadder;
}

}  // namespace weavess
