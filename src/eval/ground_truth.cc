#include "eval/ground_truth.h"

#include <algorithm>

#include "core/check.h"
#include "core/distance.h"
#include "core/neighbor.h"
#include "core/parallel.h"

namespace weavess {

GroundTruth ComputeGroundTruth(const Dataset& base, const Dataset& queries,
                               uint32_t k, uint32_t num_threads) {
  WEAVESS_CHECK(base.dim() == queries.dim());
  WEAVESS_CHECK(k >= 1 && k <= base.size());
  GroundTruth truth(queries.size());
  ParallelFor(0, queries.size(), num_threads, [&](uint32_t q) {
    const float* query = queries.Row(q);
    std::vector<Neighbor> scored(base.size());
    for (uint32_t i = 0; i < base.size(); ++i) {
      scored[i] = Neighbor(i, L2Sqr(query, base.Row(i), base.dim()));
    }
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end());
    truth[q].reserve(k);
    for (uint32_t i = 0; i < k; ++i) truth[q].push_back(scored[i].id);
  });
  return truth;
}

double Recall(const std::vector<uint32_t>& result,
              const std::vector<uint32_t>& truth, uint32_t k) {
  WEAVESS_CHECK(k >= 1);
  const size_t take_truth = std::min<size_t>(k, truth.size());
  const size_t take_result = std::min<size_t>(k, result.size());
  uint32_t hits = 0;
  for (size_t i = 0; i < take_result; ++i) {
    for (size_t j = 0; j < take_truth; ++j) {
      if (result[i] == truth[j]) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / k;
}

}  // namespace weavess
