#include "eval/synthetic.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/distance.h"
#include "core/rng.h"

namespace weavess {

namespace {

// Center range used by the real-dataset stand-ins' latent mixtures.
constexpr float kCenterRange = 100.0f;

void FillMixture(Rng& rng, uint32_t dim, uint32_t num_clusters, float stddev,
                 const std::vector<float>& centers, Dataset& out) {
  for (uint32_t i = 0; i < out.size(); ++i) {
    const uint32_t c = static_cast<uint32_t>(rng.NextBounded(num_clusters));
    const float* center = centers.data() + static_cast<size_t>(c) * dim;
    float* row = out.MutableRow(i);
    for (uint32_t d = 0; d < dim; ++d) {
      row[d] = center[d] +
               stddev * static_cast<float>(rng.NextGaussian());
    }
  }
}

}  // namespace

Workload GenerateSynthetic(const SyntheticSpec& spec,
                           const std::string& name) {
  WEAVESS_CHECK(spec.num_clusters >= 1);
  WEAVESS_CHECK(spec.num_base >= 2);
  Rng rng(spec.seed);
  std::vector<float> centers(static_cast<size_t>(spec.num_clusters) *
                             spec.dim);
  for (auto& v : centers) v = spec.center_range * rng.NextFloat();

  Workload workload;
  workload.name = name;
  workload.base = Dataset::Zeros(spec.num_base, spec.dim);
  workload.queries = Dataset::Zeros(spec.num_queries, spec.dim);
  FillMixture(rng, spec.dim, spec.num_clusters, spec.stddev, centers,
              workload.base);
  FillMixture(rng, spec.dim, spec.num_clusters, spec.stddev, centers,
              workload.queries);
  return workload;
}

namespace {

// Stand-in recipe: latent Gaussian mixture of `intrinsic` dimensions embedded
// into the original dataset's ambient dimension by a random linear map, plus
// isotropic ambient noise. The measured LID tracks the latent dimension (the
// Levina-Bickel MLE saturates near its k, so the hard sets use latent
// dimensions above their Table 3 LIDs to stay hard at laptop cardinality);
// what the experiments rely on is that the *hardness ordering* matches
// Table 3: Audio easiest ... Crawl/GIST1M/GloVe hardest.
struct StandInSpec {
  const char* name;
  uint32_t ambient_dim;  // the real dataset's dimension (Table 3)
  uint32_t intrinsic;    // targets the real dataset's LID
  uint32_t num_base;     // laptop-scaled cardinality
  uint32_t num_queries;
  uint32_t num_clusters;
  /// Isotropic ambient noise relative to the latent signal. This controls
  /// the relative contrast of nearest neighbors — the practical hardness
  /// that makes the paper's hard datasets need large candidate sets.
  float noise_sd;
};

constexpr StandInSpec kStandIns[] = {
    {"UQ-V", 256, 7, 8000, 100, 12, 1.0f},
    {"Msong", 420, 10, 6000, 100, 10, 1.2f},
    {"Audio", 192, 6, 5000, 100, 12, 0.8f},
    {"SIFT1M", 128, 9, 10000, 100, 10, 1.5f},
    {"GIST1M", 960, 35, 4000, 100, 4, 2.5f},
    {"Crawl", 300, 28, 8000, 100, 5, 3.5f},
    {"GloVe", 100, 45, 8000, 100, 2, 4.0f},
    {"Enron", 1369, 12, 2500, 100, 8, 1.8f},
};

Workload MakeEmbeddedMixture(const StandInSpec& spec, double scale,
                             uint64_t seed) {
  Rng rng(seed);
  const uint32_t intrinsic = spec.intrinsic;
  const uint32_t ambient = spec.ambient_dim;
  const auto num_base = static_cast<uint32_t>(
      std::max(64.0, spec.num_base * scale));
  const uint32_t num_queries = spec.num_queries;

  // Latent mixture (unit-range centers, SD chosen for mild overlap).
  std::vector<float> centers(static_cast<size_t>(spec.num_clusters) *
                             intrinsic);
  for (auto& v : centers) v = kCenterRange * rng.NextFloat();
  const float latent_sd = 18.0f;

  // Random embedding matrix ambient x intrinsic (Gaussian / sqrt(intrinsic)).
  std::vector<float> embed(static_cast<size_t>(ambient) * intrinsic);
  const float embed_scale = 1.0f / std::sqrt(static_cast<float>(intrinsic));
  for (auto& v : embed) {
    v = embed_scale * static_cast<float>(rng.NextGaussian());
  }
  const float noise_sd = spec.noise_sd;

  // A small uniform "background" fraction bridges the clusters, like the
  // sparse in-between points of real feature corpora — without it the
  // stand-ins' clusters are absolutely disconnected and every algorithm
  // without connectivity assurance hits an artificial recall ceiling.
  constexpr double kBackgroundFraction = 0.05;
  auto emit = [&](Dataset& out) {
    std::vector<float> latent(intrinsic);
    for (uint32_t i = 0; i < out.size(); ++i) {
      if (rng.NextDouble() < kBackgroundFraction) {
        for (uint32_t d = 0; d < intrinsic; ++d) {
          latent[d] = kCenterRange * rng.NextFloat();
        }
      } else {
        const uint32_t c =
            static_cast<uint32_t>(rng.NextBounded(spec.num_clusters));
        const float* center =
            centers.data() + static_cast<size_t>(c) * intrinsic;
        for (uint32_t d = 0; d < intrinsic; ++d) {
          latent[d] =
              center[d] + latent_sd * static_cast<float>(rng.NextGaussian());
        }
      }
      float* row = out.MutableRow(i);
      for (uint32_t a = 0; a < ambient; ++a) {
        const float* erow = embed.data() + static_cast<size_t>(a) * intrinsic;
        float acc = 0.0f;
        for (uint32_t d = 0; d < intrinsic; ++d) acc += erow[d] * latent[d];
        row[a] = acc + noise_sd * static_cast<float>(rng.NextGaussian());
      }
    }
  };

  Workload workload;
  workload.name = spec.name;
  workload.base = Dataset::Zeros(num_base, ambient);
  workload.queries = Dataset::Zeros(num_queries, ambient);
  emit(workload.base);
  emit(workload.queries);
  return workload;
}

}  // namespace

const std::vector<std::string>& StandInNames() {
  static const std::vector<std::string>* const kNames = [] {
    auto* names = new std::vector<std::string>();
    for (const StandInSpec& spec : kStandIns) names->push_back(spec.name);
    return names;
  }();
  return *kNames;
}

Workload MakeStandIn(const std::string& name, double scale) {
  for (size_t i = 0; i < std::size(kStandIns); ++i) {
    if (name == kStandIns[i].name) {
      return MakeEmbeddedMixture(kStandIns[i], scale,
                                 /*seed=*/0xda7aULL + i);
    }
  }
  WEAVESS_CHECK(false && "unknown stand-in dataset name");
  return Workload{};
}

double EstimateLid(const Dataset& data, uint32_t sample_size, uint32_t k,
                   uint64_t seed) {
  WEAVESS_CHECK(data.size() > k + 1);
  Rng rng(seed);
  const uint32_t samples = std::min(sample_size, data.size());
  const std::vector<uint32_t> picks =
      rng.SampleDistinct(data.size(), samples);
  double inv_sum = 0.0;
  uint32_t counted = 0;
  std::vector<float> dists;
  dists.reserve(data.size());
  for (uint32_t pick : picks) {
    dists.clear();
    for (uint32_t j = 0; j < data.size(); ++j) {
      if (j == pick) continue;
      dists.push_back(L2Sqr(data.Row(pick), data.Row(j), data.dim()));
    }
    std::nth_element(dists.begin(), dists.begin() + k, dists.end());
    const float radius_sqr = dists[k];
    if (radius_sqr <= 0.0f) continue;
    // MLE: LID^-1 = (1/k) Σ ln(r_k / r_i); with squared distances each log
    // halves, folded into the 0.5 factor.
    double acc = 0.0;
    uint32_t valid = 0;
    std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
    for (uint32_t i = 0; i < k; ++i) {
      if (dists[i] <= 0.0f) continue;
      acc += 0.5 * std::log(static_cast<double>(radius_sqr) / dists[i]);
      ++valid;
    }
    if (valid == 0 || acc <= 0.0) continue;
    inv_sum += acc / valid;
    ++counted;
  }
  if (counted == 0) return 0.0;
  return 1.0 / (inv_sum / counted);
}

ZipfSampler::ZipfSampler(uint32_t n, double s, uint64_t seed)
    : s_(s), rng_(seed) {
  WEAVESS_CHECK(n >= 1);
  WEAVESS_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r) + 1.0, s);
    cdf_[r] = total;
  }
  for (uint32_t r = 0; r < n; ++r) cdf_[r] /= total;
  cdf_.back() = 1.0;  // guard against rounding shortfall at the tail
}

uint32_t ZipfSampler::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin());
}

std::vector<const float*> MakeSkewedQueries(const Dataset& queries,
                                            uint32_t count, double s,
                                            uint64_t seed) {
  WEAVESS_CHECK(queries.size() >= 1);
  ZipfSampler sampler(queries.size(), s, seed);
  std::vector<const float*> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    out.push_back(queries.Row(sampler.Next()));
  }
  return out;
}

}  // namespace weavess
