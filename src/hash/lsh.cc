#include "hash/lsh.h"

#include "core/check.h"
#include "core/distance.h"

namespace weavess {

LshTable::LshTable(const Dataset& data, const Params& params)
    : dim_(data.dim()), num_bits_(params.num_bits) {
  WEAVESS_CHECK(num_bits_ >= 1 && num_bits_ <= 24);
  Rng rng(params.seed);
  // Hyperplanes through the dataset mean give balanced buckets even for
  // non-centered data.
  const std::vector<float> mean = data.Mean();
  hyperplanes_.resize(static_cast<size_t>(num_bits_) * (dim_ + 1));
  for (uint32_t b = 0; b < num_bits_; ++b) {
    float* row = hyperplanes_.data() + static_cast<size_t>(b) * (dim_ + 1);
    float offset = 0.0f;
    for (uint32_t d = 0; d < dim_; ++d) {
      row[d] = static_cast<float>(rng.NextGaussian());
      offset += row[d] * mean[d];
    }
    row[dim_] = offset;  // hyperplane bias: w·mean
  }
  for (uint32_t i = 0; i < data.size(); ++i) {
    buckets_[Signature(data.Row(i))].push_back(i);
  }
}

uint32_t LshTable::Signature(const float* vec) const {
  uint32_t code = 0;
  for (uint32_t b = 0; b < num_bits_; ++b) {
    const float* row = hyperplanes_.data() + static_cast<size_t>(b) * (dim_ + 1);
    float dot = -row[dim_];
    for (uint32_t d = 0; d < dim_; ++d) dot += row[d] * vec[d];
    if (dot >= 0.0f) code |= 1u << b;
  }
  return code;
}

std::vector<uint32_t> LshTable::Probe(const float* query,
                                      uint32_t min_candidates) const {
  std::vector<uint32_t> out;
  const uint32_t code = Signature(query);
  auto append = [this, &out](uint32_t bucket_code) {
    auto it = buckets_.find(bucket_code);
    if (it != buckets_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  };
  append(code);
  for (uint32_t b = 0; b < num_bits_ && out.size() < min_candidates; ++b) {
    append(code ^ (1u << b));
  }
  if (out.size() < min_candidates) {
    // Hamming-2 ring: sparse tables (small datasets relative to 2^bits)
    // need wider probing to guarantee seeds at all.
    for (uint32_t a = 0; a < num_bits_ && out.size() < min_candidates;
         ++a) {
      for (uint32_t b = a + 1; b < num_bits_ && out.size() < min_candidates;
           ++b) {
        append(code ^ (1u << a) ^ (1u << b));
      }
    }
  }
  if (out.empty()) {
    // Last resort: any occupied bucket (the table is never empty).
    for (const auto& [bucket_code, ids] : buckets_) {
      out.insert(out.end(), ids.begin(), ids.end());
      if (out.size() >= min_candidates) break;
    }
  }
  return out;
}

size_t LshTable::MemoryBytes() const {
  size_t bytes = hyperplanes_.size() * sizeof(float);
  for (const auto& [code, ids] : buckets_) {
    bytes += sizeof(code) + ids.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace weavess
