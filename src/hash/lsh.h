// Random-hyperplane locality-sensitive hashing: the hash-bucket seed
// acquisition (C4/C6) of IEH. The paper's IEH built its hash table in
// MATLAB; this is the native C++ equivalent (documented substitution in
// DESIGN.md §2): b random hyperplanes give each point a b-bit signature,
// and a query probes its own bucket plus buckets at Hamming distance 1.
#ifndef WEAVESS_HASH_LSH_H_
#define WEAVESS_HASH_LSH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/dataset.h"
#include "core/rng.h"

namespace weavess {

class LshTable {
 public:
  struct Params {
    uint32_t num_bits = 12;
    uint64_t seed = 1;
  };

  LshTable(const Dataset& data, const Params& params);

  /// Ids hashed near the query: its own bucket first, then Hamming-1
  /// buckets until at least `min_candidates` ids are collected (or all
  /// probe buckets are exhausted). No distance evaluations.
  std::vector<uint32_t> Probe(const float* query,
                              uint32_t min_candidates) const;

  /// Signature of an arbitrary vector (exposed for tests).
  uint32_t Signature(const float* vec) const;

  size_t MemoryBytes() const;

 private:
  uint32_t dim_;
  uint32_t num_bits_;
  std::vector<float> hyperplanes_;  // num_bits x dim, row-major
  std::unordered_map<uint32_t, std::vector<uint32_t>> buckets_;
};

}  // namespace weavess

#endif  // WEAVESS_HASH_LSH_H_
