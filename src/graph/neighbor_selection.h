// Neighbor selection (component C3, Definition 4.5): the strategies by which
// each algorithm chooses N(p) from candidate set C. The paper proves
// (Appendices A-C) that HNSW's heuristic, NSG's MRNG rule, NGT's path
// adjustment and DPG's angle maximization are all approximations of RNG;
// each variant is implemented separately so the component study (Fig. 10c)
// can compare them faithfully.
#ifndef WEAVESS_GRAPH_NEIGHBOR_SELECTION_H_
#define WEAVESS_GRAPH_NEIGHBOR_SELECTION_H_

#include <cstdint>
#include <vector>

#include "core/distance.h"
#include "core/neighbor.h"

namespace weavess {

/// Distance-only selection (KGraph / EFANNA / IEH / NSW): the closest
/// `max_degree` candidates. `candidates` must be sorted ascending.
std::vector<Neighbor> SelectByDistance(const std::vector<Neighbor>& candidates,
                                       uint32_t max_degree);

/// RNG-style heuristic of HNSW / NSG / FANNG with Vamana's α generalization:
/// scanning candidates in ascending distance, keep x iff for every already
/// kept y:  α · δ(x, y) > δ(p, x)  (α = 1 is the plain occlusion rule;
/// α > 1 keeps more, longer edges — Vamana). Distances are squared l2, so
/// the comparison applies α² internally. `candidates` sorted ascending.
std::vector<Neighbor> SelectRng(DistanceOracle& oracle, uint32_t point,
                                const std::vector<Neighbor>& candidates,
                                uint32_t max_degree, float alpha = 1.0f);

/// NSSG's angular rule: keep x iff the angle ∠(x, p, y) is at least
/// `min_angle_degrees` for every kept y (paper: θ, optimal near 60°).
std::vector<Neighbor> SelectByAngle(DistanceOracle& oracle, uint32_t point,
                                    const std::vector<Neighbor>& candidates,
                                    uint32_t max_degree,
                                    float min_angle_degrees);

/// DPG's diversification: greedily pick `target_degree` candidates that
/// maximize the sum of pairwise angles at p (Appendix C/D of the paper).
std::vector<Neighbor> SelectDpg(DistanceOracle& oracle, uint32_t point,
                                const std::vector<Neighbor>& candidates,
                                uint32_t target_degree);

/// NGT's path adjustment (Appendix B): walking p's neighbor list in
/// ascending distance, drop n when an alternative 2-hop path p→x→n through
/// a kept neighbor x satisfies max(δ(p,x), δ(x,n)) < δ(p,n).
std::vector<Neighbor> SelectPathAdjustment(
    DistanceOracle& oracle, uint32_t point,
    const std::vector<Neighbor>& candidates, uint32_t max_degree);

}  // namespace weavess

#endif  // WEAVESS_GRAPH_NEIGHBOR_SELECTION_H_
