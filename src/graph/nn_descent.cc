#include "graph/nn_descent.h"

#include <algorithm>

#include "core/rng.h"

namespace weavess {

NnDescent::NnDescent(const Dataset& data, const NnDescentParams& params,
                     DistanceCounter* counter)
    : data_(&data), params_(params), counter_(counter) {
  WEAVESS_CHECK(data.size() >= 2);
  WEAVESS_CHECK(params.k >= 1);
  pool_capacity_ =
      params.pool_size > 0 ? params.pool_size : params.k + 30;
  pool_capacity_ = std::min(pool_capacity_, data.size() - 1);
  pool_capacity_ = std::max(pool_capacity_, params.k);
  pools_.resize(data.size());
  for (auto& pool : pools_) pool.reserve(pool_capacity_ + 1);
}

bool NnDescent::InsertIntoPool(uint32_t node, uint32_t id, float distance) {
  if (id == node) return false;
  auto& pool = pools_[node];
  if (pool.size() == pool_capacity_ && distance >= pool.back().distance) {
    return false;
  }
  const Neighbor candidate(id, distance, /*checked=*/false);
  auto it = std::lower_bound(pool.begin(), pool.end(), candidate,
                             [](const Neighbor& a, const Neighbor& b) {
                               return a.distance < b.distance;
                             });
  // Reject duplicates within the run of equal distances.
  for (auto probe = it; probe != pool.end() && probe->distance == distance;
       ++probe) {
    if (probe->id == id) return false;
  }
  if (it != pool.begin()) {
    for (auto probe = std::prev(it); probe->distance == distance; --probe) {
      if (probe->id == id) return false;
      if (probe == pool.begin()) break;
    }
  }
  pool.insert(it, candidate);
  if (pool.size() > pool_capacity_) pool.pop_back();
  return true;
}

void NnDescent::InitRandom() {
  Rng rng(params_.seed);
  DistanceOracle oracle(*data_, counter_);
  const uint32_t n = data_->size();
  const uint32_t want = std::min(pool_capacity_, n - 1);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t added = 0;
    // Sample a few extra to absorb self/duplicate rejections.
    for (uint32_t attempt = 0; attempt < want * 3 && added < want;
         ++attempt) {
      const auto j = static_cast<uint32_t>(rng.NextBounded(n));
      if (j == i) continue;
      if (InsertIntoPool(i, j, oracle.Between(i, j))) ++added;
    }
  }
}

void NnDescent::InitFromGraph(const Graph& initial) {
  WEAVESS_CHECK(initial.size() == data_->size());
  DistanceOracle oracle(*data_, counter_);
  Rng rng(params_.seed);
  const uint32_t n = data_->size();
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j : initial.Neighbors(i)) {
      InsertIntoPool(i, j, oracle.Between(i, j));
    }
    // Top up sparse pools so every vertex participates in joins.
    uint32_t guard = 0;
    while (pools_[i].size() < std::min<size_t>(params_.k, n - 1) &&
           guard++ < 4 * params_.k) {
      const auto j = static_cast<uint32_t>(rng.NextBounded(n));
      if (j != i) InsertIntoPool(i, j, oracle.Between(i, j));
    }
  }
}

uint32_t NnDescent::Run() {
  const uint32_t n = data_->size();
  DistanceOracle oracle(*data_, counter_);
  Rng rng(params_.seed ^ 0xdecafULL);
  std::vector<std::vector<uint32_t>> new_lists(n), old_lists(n);
  std::vector<std::vector<uint32_t>> reverse_new(n), reverse_old(n);

  uint32_t iterations_run = 0;
  for (uint32_t iter = 0; iter < params_.iterations; ++iter) {
    ++iterations_run;
    // --- Sampling phase: split each pool into sampled-new and old. ---
    for (uint32_t i = 0; i < n; ++i) {
      auto& pool = pools_[i];
      new_lists[i].clear();
      old_lists[i].clear();
      reverse_new[i].clear();
      reverse_old[i].clear();
      uint32_t sampled = 0;
      for (auto& entry : pool) {
        if (!entry.checked && sampled < params_.sample_size) {
          new_lists[i].push_back(entry.id);
          entry.checked = true;  // joined once; becomes old
          ++sampled;
        } else {
          old_lists[i].push_back(entry.id);
        }
      }
    }
    // --- Reverse phase: invert the sampled lists, then subsample R. ---
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j : new_lists[i]) reverse_new[j].push_back(i);
      for (uint32_t j : old_lists[i]) reverse_old[j].push_back(i);
    }
    auto subsample = [&rng](std::vector<uint32_t>& list, uint32_t cap) {
      if (list.size() <= cap) return;
      for (uint32_t t = 0; t < cap; ++t) {
        const auto pick =
            t + static_cast<uint32_t>(rng.NextBounded(list.size() - t));
        std::swap(list[t], list[pick]);
      }
      list.resize(cap);
    };
    for (uint32_t i = 0; i < n; ++i) {
      subsample(reverse_new[i], params_.reverse_sample);
      subsample(reverse_old[i], params_.reverse_sample);
    }
    // --- Local join: new x new and new x old around every vertex. ---
    uint64_t updates = 0;
    std::vector<uint32_t> join_new, join_old;
    for (uint32_t i = 0; i < n; ++i) {
      join_new = new_lists[i];
      join_new.insert(join_new.end(), reverse_new[i].begin(),
                      reverse_new[i].end());
      join_old = old_lists[i];
      join_old.insert(join_old.end(), reverse_old[i].begin(),
                      reverse_old[i].end());
      for (size_t a = 0; a < join_new.size(); ++a) {
        const uint32_t u = join_new[a];
        for (size_t b = a + 1; b < join_new.size(); ++b) {
          const uint32_t v = join_new[b];
          if (u == v) continue;
          const float dist = oracle.Between(u, v);
          updates += InsertIntoPool(u, v, dist) ? 1 : 0;
          updates += InsertIntoPool(v, u, dist) ? 1 : 0;
        }
        for (uint32_t v : join_old) {
          if (u == v) continue;
          const float dist = oracle.Between(u, v);
          updates += InsertIntoPool(u, v, dist) ? 1 : 0;
          updates += InsertIntoPool(v, u, dist) ? 1 : 0;
        }
      }
    }
    if (updates < params_.delta * static_cast<double>(n) * params_.k) break;
  }
  return iterations_run;
}

Graph NnDescent::ExtractGraph(uint32_t k) const {
  const uint32_t n = data_->size();
  Graph graph(n);
  for (uint32_t i = 0; i < n; ++i) {
    const auto& pool = pools_[i];
    auto& list = graph.MutableNeighbors(i);
    const size_t take = std::min<size_t>(k, pool.size());
    list.reserve(take);
    for (size_t t = 0; t < take; ++t) list.push_back(pool[t].id);
  }
  return graph;
}

}  // namespace weavess
