#include "graph/nn_descent.h"

#include <algorithm>
#include <utility>

#include "core/parallel.h"
#include "core/rng.h"

namespace weavess {

NnDescent::NnDescent(const Dataset& data, const NnDescentParams& params,
                     DistanceCounter* counter)
    : data_(&data), params_(params), counter_(counter) {
  WEAVESS_CHECK(data.size() >= 2);
  WEAVESS_CHECK(params.k >= 1);
  pool_capacity_ =
      params.pool_size > 0 ? params.pool_size : params.k + 30;
  pool_capacity_ = std::min(pool_capacity_, data.size() - 1);
  pool_capacity_ = std::max(pool_capacity_, params.k);
  pools_.resize(data.size());
  for (auto& pool : pools_) pool.reserve(pool_capacity_ + 1);
}

bool NnDescent::InsertIntoPool(uint32_t node, uint32_t id, float distance) {
  if (id == node) return false;
  auto& pool = pools_[node];
  if (pool.size() == pool_capacity_ && distance >= pool.back().distance) {
    return false;
  }
  const Neighbor candidate(id, distance, /*checked=*/false);
  auto it = std::lower_bound(pool.begin(), pool.end(), candidate,
                             [](const Neighbor& a, const Neighbor& b) {
                               return a.distance < b.distance;
                             });
  // Reject duplicates within the run of equal distances.
  for (auto probe = it; probe != pool.end() && probe->distance == distance;
       ++probe) {
    if (probe->id == id) return false;
  }
  if (it != pool.begin()) {
    for (auto probe = std::prev(it); probe->distance == distance; --probe) {
      if (probe->id == id) return false;
      if (probe == pool.begin()) break;
    }
  }
  pool.insert(it, candidate);
  if (pool.size() > pool_capacity_) pool.pop_back();
  return true;
}

void NnDescent::InitRandom() {
  Rng rng(params_.seed);
  DistanceOracle oracle(*data_, counter_);
  const uint32_t n = data_->size();
  const uint32_t want = std::min(pool_capacity_, n - 1);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t added = 0;
    // Sample a few extra to absorb self/duplicate rejections.
    for (uint32_t attempt = 0; attempt < want * 3 && added < want;
         ++attempt) {
      const auto j = static_cast<uint32_t>(rng.NextBounded(n));
      if (j == i) continue;
      if (InsertIntoPool(i, j, oracle.Between(i, j))) ++added;
    }
    // The 3x oversampling above can still under-fill on small or
    // duplicate-heavy datasets (birthday collisions eat the attempts), so
    // top up with the same guarded loop InitFromGraph uses. Extra rng
    // draws happen only when the pool is actually short, so full pools —
    // the common case — consume an unchanged stream.
    uint32_t guard = 0;
    while (pools_[i].size() < want && guard++ < 4 * want) {
      const auto j = static_cast<uint32_t>(rng.NextBounded(n));
      if (j != i) InsertIntoPool(i, j, oracle.Between(i, j));
    }
    // Last resort at n ≈ k, where random draws need coupon-collector luck:
    // a deterministic sweep (no rng consumed) guarantees every pool holds
    // min(pool_capacity, n-1) entries, so every vertex joins every round.
    for (uint32_t j = 0; pools_[i].size() < want && j < n; ++j) {
      if (j != i) InsertIntoPool(i, j, oracle.Between(i, j));
    }
  }
}

void NnDescent::InitFromGraph(const Graph& initial) {
  WEAVESS_CHECK(initial.size() == data_->size());
  DistanceOracle oracle(*data_, counter_);
  Rng rng(params_.seed);
  const uint32_t n = data_->size();
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j : initial.Neighbors(i)) {
      InsertIntoPool(i, j, oracle.Between(i, j));
    }
    // Top up sparse pools so every vertex participates in joins.
    uint32_t guard = 0;
    while (pools_[i].size() < std::min<size_t>(params_.k, n - 1) &&
           guard++ < 4 * params_.k) {
      const auto j = static_cast<uint32_t>(rng.NextBounded(n));
      if (j != i) InsertIntoPool(i, j, oracle.Between(i, j));
    }
  }
}

uint32_t NnDescent::Run() {
  const uint32_t n = data_->size();
  Rng rng(params_.seed ^ 0xdecafULL);
  const uint32_t workers = std::max(1u, params_.num_threads);
  std::vector<std::vector<uint32_t>> new_lists(n), old_lists(n);
  std::vector<std::vector<uint32_t>> reverse_new(n), reverse_old(n);

  uint32_t iterations_run = 0;
  for (uint32_t iter = 0; iter < params_.iterations; ++iter) {
    ++iterations_run;
    // --- Sampling phase: split each pool into sampled-new and old. ---
    // Sequential on purpose: it is rng-driven and distance-free, so it
    // costs little and keeps one canonical stream at every thread count.
    for (uint32_t i = 0; i < n; ++i) {
      auto& pool = pools_[i];
      new_lists[i].clear();
      old_lists[i].clear();
      reverse_new[i].clear();
      reverse_old[i].clear();
      uint32_t sampled = 0;
      for (auto& entry : pool) {
        if (!entry.checked && sampled < params_.sample_size) {
          new_lists[i].push_back(entry.id);
          entry.checked = true;  // joined once; becomes old
          ++sampled;
        } else {
          old_lists[i].push_back(entry.id);
        }
      }
    }
    // --- Reverse phase: invert the sampled lists, then subsample R. ---
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j : new_lists[i]) reverse_new[j].push_back(i);
      for (uint32_t j : old_lists[i]) reverse_old[j].push_back(i);
    }
    auto subsample = [&rng](std::vector<uint32_t>& list, uint32_t cap) {
      if (list.size() <= cap) return;
      for (uint32_t t = 0; t < cap; ++t) {
        const auto pick =
            t + static_cast<uint32_t>(rng.NextBounded(list.size() - t));
        std::swap(list[t], list[pick]);
      }
      list.resize(cap);
    };
    for (uint32_t i = 0; i < n; ++i) {
      subsample(reverse_new[i], params_.reverse_sample);
      subsample(reverse_old[i], params_.reverse_sample);
    }
    // --- Local join: new x new and new x old around every vertex. ---
    const uint64_t updates =
        workers > 1 ? JoinParallel(new_lists, old_lists, reverse_new,
                                   reverse_old, workers)
                    : JoinSequential(new_lists, old_lists, reverse_new,
                                     reverse_old);
    if (updates < params_.delta * static_cast<double>(n) * params_.k) break;
  }
  return iterations_run;
}

uint64_t NnDescent::JoinSequential(
    const std::vector<std::vector<uint32_t>>& new_lists,
    const std::vector<std::vector<uint32_t>>& old_lists,
    const std::vector<std::vector<uint32_t>>& rev_new,
    const std::vector<std::vector<uint32_t>>& rev_old) {
  const uint32_t n = data_->size();
  DistanceOracle oracle(*data_, counter_);
  uint64_t updates = 0;
  std::vector<uint32_t> join_new, join_old;
  for (uint32_t i = 0; i < n; ++i) {
    join_new = new_lists[i];
    join_new.insert(join_new.end(), rev_new[i].begin(), rev_new[i].end());
    join_old = old_lists[i];
    join_old.insert(join_old.end(), rev_old[i].begin(), rev_old[i].end());
    for (size_t a = 0; a < join_new.size(); ++a) {
      const uint32_t u = join_new[a];
      for (size_t b = a + 1; b < join_new.size(); ++b) {
        const uint32_t v = join_new[b];
        if (u == v) continue;
        const float dist = oracle.Between(u, v);
        updates += InsertIntoPool(u, v, dist) ? 1 : 0;
        updates += InsertIntoPool(v, u, dist) ? 1 : 0;
      }
      for (uint32_t v : join_old) {
        if (u == v) continue;
        const float dist = oracle.Between(u, v);
        updates += InsertIntoPool(u, v, dist) ? 1 : 0;
        updates += InsertIntoPool(v, u, dist) ? 1 : 0;
      }
    }
  }
  return updates;
}

uint64_t NnDescent::JoinParallel(
    const std::vector<std::vector<uint32_t>>& new_lists,
    const std::vector<std::vector<uint32_t>>& old_lists,
    const std::vector<std::vector<uint32_t>>& rev_new,
    const std::vector<std::vector<uint32_t>>& rev_old,
    uint32_t workers) {
  // Equivalence argument (tested bit-for-bit in parallel_test.cc): the
  // sequential join visits pivots in id order and, per pivot, emits
  // InsertIntoPool calls in a fixed pair order. Each call reads and writes
  // only the target's pool, so the final pool state is fully determined by
  // the per-pool call sequence. Staging reproduces exactly that sequence:
  // workers record (target, id, distance) triples per pivot (pure
  // functions of the frozen join lists — no pool reads), the triples are
  // bucketed per target in pivot order, and each bucket is replayed
  // sequentially. Pivots are processed in fixed-size blocks so staging
  // memory stays bounded at large cardinality; block boundaries preserve
  // the global pivot order and therefore the per-pool call sequence.
  const uint32_t n = data_->size();
  constexpr uint32_t kJoinBlock = 4096;
  WorkerDistanceCounters counters(workers);
  std::vector<std::vector<StagedCandidate>> staged(
      std::min(n, kJoinBlock));
  std::vector<std::vector<std::pair<uint32_t, float>>> per_target(n);
  std::vector<uint32_t> touched;
  std::vector<uint64_t> worker_updates(workers, 0);
  uint64_t updates = 0;

  for (uint32_t block_begin = 0; block_begin < n;
       block_begin += kJoinBlock) {
    const uint32_t block_end = std::min(n, block_begin + kJoinBlock);
    // Stage: compute every join pair around pivots [block_begin,
    // block_end) in the sequential visit order. Distance-heavy; parallel.
    ParallelForWithWorker(
        block_begin, block_end, workers, [&](uint32_t i, uint32_t worker) {
          DistanceOracle oracle(*data_, &counters.of(worker));
          auto& out = staged[i - block_begin];
          out.clear();
          std::vector<uint32_t> join_new = new_lists[i];
          join_new.insert(join_new.end(), rev_new[i].begin(),
                          rev_new[i].end());
          std::vector<uint32_t> join_old = old_lists[i];
          join_old.insert(join_old.end(), rev_old[i].begin(),
                          rev_old[i].end());
          for (size_t a = 0; a < join_new.size(); ++a) {
            const uint32_t u = join_new[a];
            for (size_t b = a + 1; b < join_new.size(); ++b) {
              const uint32_t v = join_new[b];
              if (u == v) continue;
              const float dist = oracle.Between(u, v);
              out.push_back({u, v, dist});
              out.push_back({v, u, dist});
            }
            for (uint32_t v : join_old) {
              if (u == v) continue;
              const float dist = oracle.Between(u, v);
              out.push_back({u, v, dist});
              out.push_back({v, u, dist});
            }
          }
        });
    // Bucket in pivot order: per-target candidate sequences now match the
    // sequential insertion order exactly.
    for (uint32_t i = block_begin; i < block_end; ++i) {
      for (const StagedCandidate& c : staged[i - block_begin]) {
        if (per_target[c.target].empty()) touched.push_back(c.target);
        per_target[c.target].emplace_back(c.id, c.distance);
      }
    }
    // Merge: pools are disjoint per target, so targets commit in
    // parallel; each pool replays its candidates sequentially in order.
    ParallelForWithWorker(
        0, static_cast<uint32_t>(touched.size()), workers,
        [&](uint32_t t, uint32_t worker) {
          const uint32_t target = touched[t];
          uint64_t local = 0;
          for (const auto& [id, dist] : per_target[target]) {
            local += InsertIntoPool(target, id, dist) ? 1 : 0;
          }
          per_target[target].clear();
          worker_updates[worker] += local;
        });
    touched.clear();
  }
  // Updates and distance evaluations fold in worker-index order; both are
  // sums of per-pool / per-pivot quantities that are themselves
  // deterministic, so the totals match the sequential join exactly.
  for (const uint64_t u : worker_updates) updates += u;
  counters.FoldInto(counter_);
  return updates;
}

Graph NnDescent::ExtractGraph(uint32_t k) const {
  const uint32_t n = data_->size();
  Graph graph(n);
  for (uint32_t i = 0; i < n; ++i) {
    const auto& pool = pools_[i];
    auto& list = graph.MutableNeighbors(i);
    const size_t take = std::min<size_t>(k, pool.size());
    list.reserve(take);
    for (size_t t = 0; t < take; ++t) list.push_back(pool[t].id);
  }
  return graph;
}

}  // namespace weavess
