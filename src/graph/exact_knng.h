// Exact K-nearest-neighbor graph by brute force. Used (a) as the ground
// truth E for the graph-quality metric GQ = |E' ∩ E| / |E|, (b) as the
// neighbor initialization of IEH / FANNG / k-DR ("brute force" in Table 9),
// and (c) per-subset inside SPTAG's divide-and-conquer merge.
#ifndef WEAVESS_GRAPH_EXACT_KNNG_H_
#define WEAVESS_GRAPH_EXACT_KNNG_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/graph.h"

namespace weavess {

/// Exact directed KNNG over the whole dataset; each adjacency list holds the
/// K true nearest neighbors in ascending distance order. O(|S|^2) distance
/// evaluations, counted against `counter` when provided. `num_threads > 1`
/// parallelizes the per-vertex scans (as the paper's 32-thread builds do);
/// results are identical regardless of thread count.
Graph BuildExactKnng(const Dataset& data, uint32_t k,
                     DistanceCounter* counter = nullptr,
                     uint32_t num_threads = 1);

/// Adds, for every pair of ids within `subset`, the K-nearest edges among
/// the subset into `graph` (global vertex ids), merging with existing
/// neighbors and keeping each list's closest `k` entries. This is SPTAG's
/// subgraph-merge step.
void MergeExactKnngOnSubset(const Dataset& data,
                            const std::vector<uint32_t>& subset, uint32_t k,
                            Graph& graph, DistanceCounter* counter = nullptr);

}  // namespace weavess

#endif  // WEAVESS_GRAPH_EXACT_KNNG_H_
