// Euclidean minimum spanning tree over a point subset — the MST base graph
// (§3.1) that HCNNG uses as its neighbor-selection rule inside each
// hierarchical cluster (C3, Table 9: "distance" via MST).
#ifndef WEAVESS_GRAPH_MST_H_
#define WEAVESS_GRAPH_MST_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"

namespace weavess {

/// Kruskal's algorithm over all pairs within `ids` (sizes are small: HCNNG
/// cluster leaves). Returns |ids| - 1 edges as (global id, global id) pairs;
/// empty input or a single id yields no edges.
std::vector<std::pair<uint32_t, uint32_t>> BuildMst(
    const Dataset& data, const std::vector<uint32_t>& ids,
    DistanceCounter* counter = nullptr);

/// Total weight (true l2, not squared) of an edge list; test helper for the
/// MST minimality property.
double EdgeListWeight(const Dataset& data,
                      const std::vector<std::pair<uint32_t, uint32_t>>& edges);

}  // namespace weavess

#endif  // WEAVESS_GRAPH_MST_H_
