// Connectivity assurance (component C5): NSG-style depth-first "tree grow".
// After neighbor selection, some vertices may be unreachable from the entry
// point; each such vertex is attached by searching for its nearest reachable
// neighbor on the current graph and adding a bridging edge.
#ifndef WEAVESS_GRAPH_CONNECTIVITY_H_
#define WEAVESS_GRAPH_CONNECTIVITY_H_

#include <cstdint>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/graph.h"

namespace weavess {

/// Makes every vertex reachable from `root` along directed edges. For each
/// unreachable vertex u, a best-first search from `root` (pool size
/// `search_pool_size`) locates reachable vertices close to u and an edge
/// closest-found → u is added. Returns the number of bridging edges added.
uint32_t EnsureReachableFrom(Graph& graph, const Dataset& data, uint32_t root,
                             uint32_t search_pool_size,
                             DistanceCounter* counter = nullptr);

}  // namespace weavess

#endif  // WEAVESS_GRAPH_CONNECTIVITY_H_
