#include "graph/neighbor_selection.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace weavess {

namespace {

// Cosine of the angle ∠(a, p, b) from the squared side lengths, via the law
// of cosines: cos = (|pa|² + |pb|² - |ab|²) / (2 |pa| |pb|).
float CosineAtPoint(float pa_sqr, float pb_sqr, float ab_sqr) {
  const float denom = 2.0f * std::sqrt(pa_sqr) * std::sqrt(pb_sqr);
  if (denom <= 0.0f) return 1.0f;  // coincident points: treat as angle 0
  const float cosine = (pa_sqr + pb_sqr - ab_sqr) / denom;
  return std::clamp(cosine, -1.0f, 1.0f);
}

}  // namespace

std::vector<Neighbor> SelectByDistance(const std::vector<Neighbor>& candidates,
                                       uint32_t max_degree) {
  std::vector<Neighbor> selected(
      candidates.begin(),
      candidates.begin() +
          std::min<size_t>(max_degree, candidates.size()));
  return selected;
}

std::vector<Neighbor> SelectRng(DistanceOracle& oracle, uint32_t point,
                                const std::vector<Neighbor>& candidates,
                                uint32_t max_degree, float alpha) {
  WEAVESS_CHECK(alpha >= 1.0f);
  // Squared distances: α·δ(x,y) > δ(p,x)  ⇔  α²·δ²(x,y) > δ²(p,x).
  const float alpha_sqr = alpha * alpha;
  std::vector<Neighbor> selected;
  selected.reserve(max_degree);
  for (const Neighbor& candidate : candidates) {
    if (selected.size() >= max_degree) break;
    if (candidate.id == point) continue;
    bool occluded = false;
    for (const Neighbor& kept : selected) {
      if (kept.id == candidate.id) {
        occluded = true;
        break;
      }
      const float between = oracle.Between(candidate.id, kept.id);
      if (alpha_sqr * between <= candidate.distance) {
        occluded = true;  // kept neighbor y is closer to x than p is
        break;
      }
    }
    if (!occluded) selected.push_back(candidate);
  }
  return selected;
}

std::vector<Neighbor> SelectByAngle(DistanceOracle& oracle, uint32_t point,
                                    const std::vector<Neighbor>& candidates,
                                    uint32_t max_degree,
                                    float min_angle_degrees) {
  const float max_cosine =
      std::cos(min_angle_degrees * static_cast<float>(M_PI) / 180.0f);
  std::vector<Neighbor> selected;
  selected.reserve(max_degree);
  for (const Neighbor& candidate : candidates) {
    if (selected.size() >= max_degree) break;
    if (candidate.id == point) continue;
    bool conflict = false;
    for (const Neighbor& kept : selected) {
      if (kept.id == candidate.id) {
        conflict = true;
        break;
      }
      const float between = oracle.Between(candidate.id, kept.id);
      // Angle below threshold ⇔ cosine above threshold's cosine.
      if (CosineAtPoint(candidate.distance, kept.distance, between) >
          max_cosine) {
        conflict = true;
        break;
      }
    }
    if (!conflict) selected.push_back(candidate);
  }
  return selected;
}

std::vector<Neighbor> SelectDpg(DistanceOracle& oracle, uint32_t point,
                                const std::vector<Neighbor>& candidates,
                                uint32_t target_degree) {
  std::vector<Neighbor> selected;
  if (candidates.empty()) return selected;
  std::vector<Neighbor> remaining;
  remaining.reserve(candidates.size());
  for (const Neighbor& c : candidates) {
    if (c.id != point) remaining.push_back(c);
  }
  if (remaining.empty()) return selected;

  // Greedy: start from the closest, then repeatedly add the candidate whose
  // angle sum to the already-selected set is largest (Appendix D gives this
  // O(c²·κ) procedure).
  selected.push_back(remaining.front());
  remaining.erase(remaining.begin());
  std::vector<float> angle_sum(remaining.size(), 0.0f);
  while (selected.size() < target_degree && !remaining.empty()) {
    const Neighbor& latest = selected.back();
    float best_sum = -1.0f;
    size_t best_index = 0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const float between = oracle.Between(remaining[i].id, latest.id);
      const float cosine =
          CosineAtPoint(remaining[i].distance, latest.distance, between);
      angle_sum[i] += std::acos(cosine);
      if (angle_sum[i] > best_sum) {
        best_sum = angle_sum[i];
        best_index = i;
      }
    }
    selected.push_back(remaining[best_index]);
    remaining.erase(remaining.begin() + best_index);
    angle_sum.erase(angle_sum.begin() + best_index);
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

std::vector<Neighbor> SelectPathAdjustment(
    DistanceOracle& oracle, uint32_t point,
    const std::vector<Neighbor>& candidates, uint32_t max_degree) {
  std::vector<Neighbor> selected;
  selected.reserve(max_degree);
  for (const Neighbor& candidate : candidates) {
    if (selected.size() >= max_degree) break;
    if (candidate.id == point) continue;
    bool bypassed = false;
    for (const Neighbor& kept : selected) {
      if (kept.id == candidate.id) {
        bypassed = true;
        break;
      }
      const float hop = oracle.Between(kept.id, candidate.id);
      // Alternative path p → kept → candidate is strictly shorter on both
      // hops: drop the direct edge.
      if (std::max(kept.distance, hop) < candidate.distance) {
        bypassed = true;
        break;
      }
    }
    if (!bypassed) selected.push_back(candidate);
  }
  return selected;
}

}  // namespace weavess
