#include "graph/connectivity.h"

#include <vector>

#include "core/neighbor.h"
#include "search/router.h"

namespace weavess {

namespace {

// Marks everything reachable from the vertices currently flagged in `seen`
// whose ids are on `stack`.
void Reach(const Graph& graph, std::vector<bool>& seen,
           std::vector<uint32_t>& stack) {
  while (!stack.empty()) {
    const uint32_t v = stack.back();
    stack.pop_back();
    for (uint32_t u : graph.Neighbors(v)) {
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
}

}  // namespace

uint32_t EnsureReachableFrom(Graph& graph, const Dataset& data, uint32_t root,
                             uint32_t search_pool_size,
                             DistanceCounter* counter) {
  const uint32_t n = graph.size();
  WEAVESS_CHECK(root < n);
  std::vector<bool> seen(n, false);
  std::vector<uint32_t> stack = {root};
  seen[root] = true;
  Reach(graph, seen, stack);

  DistanceOracle oracle(data, counter);
  SearchContext ctx(n);
  uint32_t bridges = 0;
  for (uint32_t u = 0; u < n; ++u) {
    if (seen[u]) continue;
    // Search the reachable part of the graph for vertices near u, then
    // bridge from the closest reachable vertex found.
    ctx.BeginQuery();
    CandidatePool pool(search_pool_size);
    SeedPool({root}, data.Row(u), oracle, ctx, pool);
    BestFirstSearch(graph, data.Row(u), oracle, ctx, pool);
    uint32_t attach = root;
    for (const Neighbor& candidate : pool.entries()) {
      if (seen[candidate.id]) {
        attach = candidate.id;
        break;  // pool is sorted: first reachable hit is the closest
      }
    }
    graph.AddEdgeUnique(attach, u);
    ++bridges;
    // Everything reachable from u is now reachable from the root.
    seen[u] = true;
    stack.push_back(u);
    Reach(graph, seen, stack);
  }
  return bridges;
}

}  // namespace weavess
