#include "graph/mst.h"

#include <algorithm>
#include <cmath>

#include "graph/union_find.h"

namespace weavess {

std::vector<std::pair<uint32_t, uint32_t>> BuildMst(
    const Dataset& data, const std::vector<uint32_t>& ids,
    DistanceCounter* counter) {
  std::vector<std::pair<uint32_t, uint32_t>> mst_edges;
  const auto m = static_cast<uint32_t>(ids.size());
  if (m < 2) return mst_edges;
  DistanceOracle oracle(data, counter);

  struct WeightedEdge {
    float weight;
    uint32_t a;  // local indices into ids
    uint32_t b;
  };
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<size_t>(m) * (m - 1) / 2);
  for (uint32_t a = 0; a < m; ++a) {
    for (uint32_t b = a + 1; b < m; ++b) {
      edges.push_back({oracle.Between(ids[a], ids[b]), a, b});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& x, const WeightedEdge& y) {
              return x.weight < y.weight;
            });
  UnionFind components(m);
  mst_edges.reserve(m - 1);
  for (const WeightedEdge& edge : edges) {
    if (components.Union(edge.a, edge.b)) {
      mst_edges.emplace_back(ids[edge.a], ids[edge.b]);
      if (mst_edges.size() == m - 1) break;
    }
  }
  return mst_edges;
}

double EdgeListWeight(
    const Dataset& data,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  double total = 0.0;
  for (const auto& [a, b] : edges) {
    total += std::sqrt(L2Sqr(data.Row(a), data.Row(b), data.dim()));
  }
  return total;
}

}  // namespace weavess
