// NN-Descent (Dong et al., WWW'11): iterative KNNG refinement by
// neighborhood propagation — "my neighbors' neighbors are likely my
// neighbors". This is the KGraph construction, the neighbor initialization
// (C1) of NSG / NSSG / DPG, and (seeded by KD-trees) of EFANNA. Complexity
// is empirically O(|S|^1.14) (Table 2 of the paper).
#ifndef WEAVESS_GRAPH_NN_DESCENT_H_
#define WEAVESS_GRAPH_NN_DESCENT_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/graph.h"
#include "core/neighbor.h"

namespace weavess {

struct NnDescentParams {
  /// Out-degree K of the extracted KNNG.
  uint32_t k = 20;
  /// Per-vertex pool capacity L (>= k). 0 means k + 30.
  uint32_t pool_size = 0;
  /// Maximum NN-Descent iterations (`iter` in KGraph's parameters).
  uint32_t iterations = 8;
  /// Forward sample size S: how many "new" neighbors join per round.
  uint32_t sample_size = 10;
  /// Reverse sample size R: how many reverse neighbors join per round.
  uint32_t reverse_sample = 10;
  /// Early-stop when the fraction of pool updates drops below delta.
  double delta = 0.001;
  uint64_t seed = 7;
};

class NnDescent {
 public:
  /// `counter`, when provided, accumulates construction-time distance
  /// evaluations. The dataset must outlive this object.
  NnDescent(const Dataset& data, const NnDescentParams& params,
            DistanceCounter* counter = nullptr);

  /// Fills every pool with random neighbors (KGraph / NSG / DPG init).
  void InitRandom();

  /// Seeds pools from an existing graph's adjacency lists (EFANNA's
  /// KD-tree initialization); distances are computed here. Pools are
  /// topped up with random entries if the graph is sparser than the pool.
  void InitFromGraph(const Graph& initial);

  /// Runs refinement rounds; returns the number executed (may stop early).
  uint32_t Run();

  /// Extracts the directed KNNG: each vertex's closest `k` pool entries in
  /// ascending distance order.
  Graph ExtractGraph(uint32_t k) const;

  /// Read access to the refined pools (id + distance, ascending); used by
  /// algorithms that select neighbors directly from the candidate pools.
  const std::vector<std::vector<Neighbor>>& pools() const { return pools_; }

 private:
  // Inserts into pools_[node] keeping it sorted/bounded; returns true if
  // the pool changed. `Neighbor::checked == false` marks "new" entries.
  bool InsertIntoPool(uint32_t node, uint32_t id, float distance);

  const Dataset* data_;
  NnDescentParams params_;
  DistanceCounter* counter_;
  uint32_t pool_capacity_;
  std::vector<std::vector<Neighbor>> pools_;
};

}  // namespace weavess

#endif  // WEAVESS_GRAPH_NN_DESCENT_H_
