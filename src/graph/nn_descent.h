// NN-Descent (Dong et al., WWW'11): iterative KNNG refinement by
// neighborhood propagation — "my neighbors' neighbors are likely my
// neighbors". This is the KGraph construction, the neighbor initialization
// (C1) of NSG / NSSG / DPG, and (seeded by KD-trees) of EFANNA. Complexity
// is empirically O(|S|^1.14) (Table 2 of the paper).
#ifndef WEAVESS_GRAPH_NN_DESCENT_H_
#define WEAVESS_GRAPH_NN_DESCENT_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/graph.h"
#include "core/neighbor.h"

namespace weavess {

struct NnDescentParams {
  /// Out-degree K of the extracted KNNG.
  uint32_t k = 20;
  /// Per-vertex pool capacity L (>= k). 0 means k + 30.
  uint32_t pool_size = 0;
  /// Maximum NN-Descent iterations (`iter` in KGraph's parameters).
  uint32_t iterations = 8;
  /// Forward sample size S: how many "new" neighbors join per round.
  uint32_t sample_size = 10;
  /// Reverse sample size R: how many reverse neighbors join per round.
  uint32_t reverse_sample = 10;
  /// Early-stop when the fraction of pool updates drops below delta.
  double delta = 0.001;
  uint64_t seed = 7;
  /// Workers for the local-join rounds (the distance-heavy phase). Results
  /// are bit-for-bit identical at any value — see NnDescent::Run.
  uint32_t num_threads = 1;
};

class NnDescent {
 public:
  /// `counter`, when provided, accumulates construction-time distance
  /// evaluations. The dataset must outlive this object.
  NnDescent(const Dataset& data, const NnDescentParams& params,
            DistanceCounter* counter = nullptr);

  /// Fills every pool with random neighbors (KGraph / NSG / DPG init).
  void InitRandom();

  /// Seeds pools from an existing graph's adjacency lists (EFANNA's
  /// KD-tree initialization); distances are computed here. Pools are
  /// topped up with random entries if the graph is sparser than the pool.
  void InitFromGraph(const Graph& initial);

  /// Runs refinement rounds; returns the number executed (may stop early).
  ///
  /// With params.num_threads > 1 each round's local join runs as a
  /// parallel-for over pivot vertices on the shared ThreadPool: workers
  /// stage (target, candidate, distance) triples instead of mutating pools
  /// in place, and the staged candidates are then merged into each target's
  /// pool in deterministic pivot order. Because InsertIntoPool's
  /// accept/reject decision depends only on the target pool's own state,
  /// replaying the exact sequential insertion order per pool makes the
  /// refined pools — and the distance-evaluation count — bit-for-bit
  /// identical to the single-threaded run at any thread count
  /// (docs/CONCURRENCY.md).
  uint32_t Run();

  /// Extracts the directed KNNG: each vertex's closest `k` pool entries in
  /// ascending distance order.
  Graph ExtractGraph(uint32_t k) const;

  /// Read access to the refined pools (id + distance, ascending); used by
  /// algorithms that select neighbors directly from the candidate pools.
  const std::vector<std::vector<Neighbor>>& pools() const { return pools_; }

 private:
  // One staged join product: candidate `id` at `distance` destined for
  // pools_[target]. Staging decouples the (parallel, distance-heavy) join
  // from the (per-pool sequential) merge that keeps builds deterministic.
  struct StagedCandidate {
    uint32_t target;
    uint32_t id;
    float distance;
  };

  // Inserts into pools_[node] keeping it sorted/bounded; returns true if
  // the pool changed. `Neighbor::checked == false` marks "new" entries.
  bool InsertIntoPool(uint32_t node, uint32_t id, float distance);

  // One round's local join over every pivot vertex, in place (the original
  // sequential formulation). Returns the number of pool updates.
  uint64_t JoinSequential(const std::vector<std::vector<uint32_t>>& new_lists,
                          const std::vector<std::vector<uint32_t>>& old_lists,
                          const std::vector<std::vector<uint32_t>>& rev_new,
                          const std::vector<std::vector<uint32_t>>& rev_old);

  // The same join, staged block-by-block across `workers` threads and
  // merged in pivot order — bit-for-bit identical to JoinSequential.
  uint64_t JoinParallel(const std::vector<std::vector<uint32_t>>& new_lists,
                        const std::vector<std::vector<uint32_t>>& old_lists,
                        const std::vector<std::vector<uint32_t>>& rev_new,
                        const std::vector<std::vector<uint32_t>>& rev_old,
                        uint32_t workers);

  const Dataset* data_;
  NnDescentParams params_;
  DistanceCounter* counter_;
  uint32_t pool_capacity_;
  std::vector<std::vector<Neighbor>> pools_;
};

}  // namespace weavess

#endif  // WEAVESS_GRAPH_NN_DESCENT_H_
