// Disjoint-set union with path halving and union by size. Backs Kruskal's
// MST (HCNNG clusters) and connectivity accounting.
#ifndef WEAVESS_GRAPH_UNION_FIND_H_
#define WEAVESS_GRAPH_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/check.h"

namespace weavess {

class UnionFind {
 public:
  explicit UnionFind(uint32_t n) : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  uint32_t Find(uint32_t x) {
    WEAVESS_DCHECK(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if a and b were in different sets (and are now merged).
  bool Union(uint32_t a, uint32_t b) {
    uint32_t ra = Find(a);
    uint32_t rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --components_;
    return true;
  }

  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  uint32_t components() const { return components_; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  uint32_t components_;
};

}  // namespace weavess

#endif  // WEAVESS_GRAPH_UNION_FIND_H_
