#include "graph/exact_knng.h"

#include <algorithm>

#include "core/neighbor.h"
#include "core/parallel.h"

namespace weavess {

Graph BuildExactKnng(const Dataset& data, uint32_t k,
                     DistanceCounter* counter, uint32_t num_threads) {
  const uint32_t n = data.size();
  WEAVESS_CHECK(n >= 2);
  const uint32_t effective_k = std::min(k, n - 1);
  Graph graph(n);
  const uint32_t workers = std::max(1u, num_threads);
  WorkerDistanceCounters worker_counters(workers);
  ParallelForWithWorker(
      0, n, workers, [&](uint32_t i, uint32_t worker) {
        DistanceOracle oracle(data, &worker_counters.of(worker));
        std::vector<Neighbor> scored;
        scored.reserve(n - 1);
        for (uint32_t j = 0; j < n; ++j) {
          if (j == i) continue;
          scored.emplace_back(j, oracle.Between(i, j));
        }
        std::partial_sort(scored.begin(), scored.begin() + effective_k,
                          scored.end());
        auto& list = graph.MutableNeighbors(i);
        list.reserve(effective_k);
        for (uint32_t t = 0; t < effective_k; ++t) {
          list.push_back(scored[t].id);
        }
      });
  worker_counters.FoldInto(counter);
  return graph;
}

void MergeExactKnngOnSubset(const Dataset& data,
                            const std::vector<uint32_t>& subset, uint32_t k,
                            Graph& graph, DistanceCounter* counter) {
  const auto m = static_cast<uint32_t>(subset.size());
  if (m < 2) return;
  const uint32_t effective_k = std::min(k, m - 1);
  DistanceOracle oracle(data, counter);

  // Pairwise distances within the subset (m is small by construction).
  std::vector<float> dist(static_cast<size_t>(m) * m, 0.0f);
  for (uint32_t a = 0; a < m; ++a) {
    for (uint32_t b = a + 1; b < m; ++b) {
      const float d = oracle.Between(subset[a], subset[b]);
      dist[static_cast<size_t>(a) * m + b] = d;
      dist[static_cast<size_t>(b) * m + a] = d;
    }
  }
  std::vector<Neighbor> merged;
  for (uint32_t a = 0; a < m; ++a) {
    const uint32_t p = subset[a];
    // Merge existing neighbors (with recomputed distances) and the
    // subset's k nearest, then keep the overall closest k.
    merged.clear();
    for (uint32_t existing : graph.Neighbors(p)) {
      merged.emplace_back(existing, oracle.Between(p, existing));
    }
    std::vector<Neighbor> local;
    local.reserve(m - 1);
    for (uint32_t b = 0; b < m; ++b) {
      if (b == a) continue;
      local.emplace_back(subset[b], dist[static_cast<size_t>(a) * m + b]);
    }
    std::partial_sort(local.begin(), local.begin() + effective_k,
                      local.end());
    merged.insert(merged.end(), local.begin(), local.begin() + effective_k);
    std::sort(merged.begin(), merged.end());
    auto& list = graph.MutableNeighbors(p);
    list.clear();
    for (const Neighbor& nb : merged) {
      if (std::find(list.begin(), list.end(), nb.id) == list.end()) {
        list.push_back(nb.id);
        if (list.size() >= k) break;
      }
    }
  }
}

}  // namespace weavess
