// Flattened adjacency storage for search-time memory locality (Appendix I
// of the paper: aligning neighbor lists to a fixed stride enables
// contiguous access and improves search efficiency — unless the maximum
// out-degree is too large, when padding blows the memory budget).
//
// Two layouts over the same Graph:
//  - CsrGraph: compact offsets + one id array (no padding);
//  - AlignedGraph: fixed stride = max degree, padded with kInvalid
//    (the paper's "align the adjacency list to the same size").
#ifndef WEAVESS_CORE_FLAT_GRAPH_H_
#define WEAVESS_CORE_FLAT_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/check.h"
#include "core/graph.h"

namespace weavess {

/// Compressed-sparse-row view: neighbors of v are ids_[offsets_[v]] ..
/// ids_[offsets_[v+1]).
class CsrGraph {
 public:
  /// Empty graph (zero vertices); indexes assign a real one after Build.
  CsrGraph() : offsets_(1, 0) {}

  explicit CsrGraph(const Graph& graph);

  uint32_t size() const {
    return static_cast<uint32_t>(offsets_.size()) - 1;
  }

  std::span<const uint32_t> Neighbors(uint32_t v) const {
    WEAVESS_DCHECK(v + 1 < offsets_.size());
    return {ids_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  size_t MemoryBytes() const {
    return offsets_.size() * sizeof(uint64_t) + ids_.size() * sizeof(uint32_t);
  }

 private:
  std::vector<uint64_t> offsets_;
  std::vector<uint32_t> ids_;
};

/// Fixed-stride view: every vertex owns exactly `stride()` slots; unused
/// slots hold kInvalid. Neighbor iteration never chases a second pointer.
class AlignedGraph {
 public:
  static constexpr uint32_t kInvalid = 0xffffffffu;

  explicit AlignedGraph(const Graph& graph);

  uint32_t size() const { return num_vertices_; }
  uint32_t stride() const { return stride_; }

  /// All slots of v (iterate until kInvalid).
  const uint32_t* Slots(uint32_t v) const {
    WEAVESS_DCHECK(v < num_vertices_);
    return slots_.data() + static_cast<size_t>(v) * stride_;
  }

  size_t MemoryBytes() const { return slots_.size() * sizeof(uint32_t); }

 private:
  uint32_t num_vertices_ = 0;
  uint32_t stride_ = 0;
  std::vector<uint32_t> slots_;
};

}  // namespace weavess

#endif  // WEAVESS_CORE_FLAT_GRAPH_H_
