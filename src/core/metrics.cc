#include "core/metrics.h"

#include <algorithm>
#include <limits>
#include <unordered_set>
#include <vector>

namespace weavess {

DegreeStats ComputeDegreeStats(const Graph& graph) {
  DegreeStats stats;
  if (graph.size() == 0) return stats;
  uint64_t total = 0;
  uint32_t max_degree = 0;
  uint32_t min_degree = std::numeric_limits<uint32_t>::max();
  for (uint32_t v = 0; v < graph.size(); ++v) {
    const auto degree = static_cast<uint32_t>(graph.Neighbors(v).size());
    total += degree;
    max_degree = std::max(max_degree, degree);
    min_degree = std::min(min_degree, degree);
  }
  stats.average = static_cast<double>(total) / graph.size();
  stats.max = max_degree;
  stats.min = min_degree;
  return stats;
}

double ComputeGraphQuality(const Graph& graph, const Graph& exact_knng) {
  WEAVESS_CHECK(graph.size() == exact_knng.size());
  if (exact_knng.NumEdges() == 0) return 0.0;
  uint64_t hits = 0;
  uint64_t total = 0;
  std::unordered_set<uint32_t> present;
  for (uint32_t v = 0; v < graph.size(); ++v) {
    const auto& approx = graph.Neighbors(v);
    present.clear();
    present.insert(approx.begin(), approx.end());
    for (uint32_t u : exact_knng.Neighbors(v)) {
      ++total;
      if (present.count(u) != 0) ++hits;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(hits) / total;
}

uint32_t CountConnectedComponents(const Graph& graph) {
  const uint32_t n = graph.size();
  if (n == 0) return 0;
  // Build the undirected view implicitly: union by both arc directions.
  std::vector<uint32_t> parent(n);
  for (uint32_t i = 0; i < n; ++i) parent[i] = i;
  // Iterative path-halving find.
  auto find = [&parent](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  uint32_t components = n;
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t u : graph.Neighbors(v)) {
      uint32_t a = find(v);
      uint32_t b = find(u);
      if (a != b) {
        parent[a] = b;
        --components;
      }
    }
  }
  return components;
}

bool AllReachableFrom(const Graph& graph, uint32_t root) {
  const uint32_t n = graph.size();
  if (n == 0) return true;
  WEAVESS_CHECK(root < n);
  std::vector<bool> seen(n, false);
  std::vector<uint32_t> stack = {root};
  seen[root] = true;
  uint32_t visited = 0;
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    ++visited;
    for (uint32_t u : graph.Neighbors(v)) {
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  return visited == n;
}

}  // namespace weavess
