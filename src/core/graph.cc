#include "core/graph.h"

#include <algorithm>

#include "core/graph_io.h"

namespace weavess {

bool Graph::AddEdgeUnique(uint32_t u, uint32_t v) {
  WEAVESS_DCHECK(u < size() && v < size());
  auto& list = adjacency_[u];
  if (std::find(list.begin(), list.end(), v) != list.end()) return false;
  list.push_back(v);
  return true;
}

bool Graph::HasEdge(uint32_t u, uint32_t v) const {
  WEAVESS_DCHECK(u < size());
  const auto& list = adjacency_[u];
  return std::find(list.begin(), list.end(), v) != list.end();
}

uint64_t Graph::NumEdges() const {
  uint64_t total = 0;
  for (const auto& list : adjacency_) total += list.size();
  return total;
}

size_t Graph::MemoryBytes() const {
  size_t bytes = adjacency_.size() * sizeof(std::vector<uint32_t>);
  for (const auto& list : adjacency_) bytes += list.size() * sizeof(uint32_t);
  return bytes;
}

void Graph::SortNeighborLists() {
  for (auto& list : adjacency_) std::sort(list.begin(), list.end());
}

void Graph::TruncateDegrees(uint32_t max_degree) {
  for (auto& list : adjacency_) {
    if (list.size() > max_degree) list.resize(max_degree);
  }
}

Status Graph::Save(const std::string& path, std::string_view metadata) const {
  return SaveGraph(*this, path, metadata);
}

StatusOr<Graph> Graph::Load(const std::string& path, std::string* metadata) {
  return LoadGraph(path, metadata);
}

}  // namespace weavess
