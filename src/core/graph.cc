#include "core/graph.h"

#include <algorithm>
#include <cstdio>

namespace weavess {

bool Graph::AddEdgeUnique(uint32_t u, uint32_t v) {
  WEAVESS_DCHECK(u < size() && v < size());
  auto& list = adjacency_[u];
  if (std::find(list.begin(), list.end(), v) != list.end()) return false;
  list.push_back(v);
  return true;
}

bool Graph::HasEdge(uint32_t u, uint32_t v) const {
  WEAVESS_DCHECK(u < size());
  const auto& list = adjacency_[u];
  return std::find(list.begin(), list.end(), v) != list.end();
}

uint64_t Graph::NumEdges() const {
  uint64_t total = 0;
  for (const auto& list : adjacency_) total += list.size();
  return total;
}

size_t Graph::MemoryBytes() const {
  size_t bytes = adjacency_.size() * sizeof(std::vector<uint32_t>);
  for (const auto& list : adjacency_) bytes += list.size() * sizeof(uint32_t);
  return bytes;
}

void Graph::SortNeighborLists() {
  for (auto& list : adjacency_) std::sort(list.begin(), list.end());
}

void Graph::TruncateDegrees(uint32_t max_degree) {
  for (auto& list : adjacency_) {
    if (list.size() > max_degree) list.resize(max_degree);
  }
}

void Graph::Save(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  WEAVESS_CHECK(file != nullptr);
  const uint32_t n = size();
  WEAVESS_CHECK(std::fwrite(&n, sizeof(n), 1, file) == 1);
  for (const auto& list : adjacency_) {
    const auto degree = static_cast<uint32_t>(list.size());
    WEAVESS_CHECK(std::fwrite(&degree, sizeof(degree), 1, file) == 1);
    if (degree > 0) {
      WEAVESS_CHECK(std::fwrite(list.data(), sizeof(uint32_t), degree,
                                file) == degree);
    }
  }
  WEAVESS_CHECK(std::fclose(file) == 0);
}

Graph Graph::Load(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  WEAVESS_CHECK(file != nullptr);
  uint32_t n = 0;
  WEAVESS_CHECK(std::fread(&n, sizeof(n), 1, file) == 1);
  Graph graph(n);
  for (uint32_t v = 0; v < n; ++v) {
    uint32_t degree = 0;
    WEAVESS_CHECK(std::fread(&degree, sizeof(degree), 1, file) == 1);
    WEAVESS_CHECK(degree <= n);
    auto& list = graph.adjacency_[v];
    list.resize(degree);
    if (degree > 0) {
      WEAVESS_CHECK(std::fread(list.data(), sizeof(uint32_t), degree,
                               file) == degree);
      for (uint32_t id : list) WEAVESS_CHECK(id < n);
    }
  }
  std::fclose(file);
  return graph;
}

}  // namespace weavess
