// Index-structure metrics from §5.1 of the paper: graph quality (GQ),
// average/max/min out-degree (AD), and number of connected components (CC).
// These feed Table 4, Table 11, and Figure 6.
#ifndef WEAVESS_CORE_METRICS_H_
#define WEAVESS_CORE_METRICS_H_

#include <cstdint>

#include "core/graph.h"

namespace weavess {

struct DegreeStats {
  double average = 0.0;
  uint32_t max = 0;
  uint32_t min = 0;
};

/// Out-degree statistics over all vertices.
DegreeStats ComputeDegreeStats(const Graph& graph);

/// Graph quality GQ = |E' ∩ E| / |E| where E' is `graph`'s edge set and E is
/// the exact KNNG's (both directed). `exact_knng` lists each vertex's true
/// K nearest neighbors. Matches the definition of [21, 26, 97] cited in §5.1.
double ComputeGraphQuality(const Graph& graph, const Graph& exact_knng);

/// Number of connected components of the *undirected view* of the graph
/// (edge direction ignored), via breadth-first traversal.
uint32_t CountConnectedComponents(const Graph& graph);

/// True when every vertex is reachable from `root` following directed edges.
bool AllReachableFrom(const Graph& graph, uint32_t root);

}  // namespace weavess

#endif  // WEAVESS_CORE_METRICS_H_
