// Per-query search state. Lives in core (not search/) because the index
// facade exposes a thread-compatible search entry point that takes this
// scratch explicitly: the concurrent query engine owns one SearchScratch
// per in-flight query and hands it to AnnIndex::SearchWith, so an immutable
// index can serve many queries in parallel with zero shared mutable state.
#ifndef WEAVESS_CORE_SEARCH_CONTEXT_H_
#define WEAVESS_CORE_SEARCH_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "core/budget.h"
#include "core/clock.h"
#include "core/distance.h"
#include "core/neighbor.h"
#include "core/visited_list.h"
#include "obs/trace.h"

namespace weavess {

/// Per-query scratch state: visited stamps, the NDC counter behind the
/// Speedup metric, the hop counter behind the query-path-length metric
/// (PL in Table 5 counts expanded vertices along the search), and the
/// optional search budget that lets routing stop early with best-so-far
/// results instead of walking to convergence.
struct SearchContext {
  explicit SearchContext(uint32_t num_vertices) : visited(num_vertices) {}

  /// Call once per query before seeding. Resets the budget to unlimited;
  /// arm it afterwards with ArmBudget when the caller set one.
  void BeginQuery() {
    visited.Reset();
    hops = 0;
    truncated = false;
    budget = SearchBudget::Unlimited();
    budget_counter = nullptr;
  }

  /// Arms the per-query budget. `counter` is the DistanceCounter the
  /// query's oracle writes into (routing charges its spend there). A null
  /// `clock` measures time_budget_us against the process SteadyClock;
  /// tests pass a VirtualClock for deterministic wall-clock truncation.
  void ArmBudget(uint64_t max_distance_evals, uint64_t time_budget_us,
                 const DistanceCounter* counter,
                 const Clock* clock = nullptr) {
    budget = SearchBudget::FromLimits(max_distance_evals, time_budget_us,
                                      clock);
    budget_counter = counter;
  }

  /// True once routing must stop. Routers call this before each vertex
  /// expansion and set `truncated` when it trips with work remaining.
  bool BudgetExhausted() const {
    if (budget.unlimited()) return false;
    const uint64_t evals =
        budget_counter != nullptr ? budget_counter->count : 0;
    return budget.Exhausted(evals);
  }

  VisitedList visited;
  DistanceCounter counter;
  uint64_t hops = 0;
  /// Set by routers when the budget stopped the walk before convergence.
  bool truncated = false;
  SearchBudget budget;
  const DistanceCounter* budget_counter = nullptr;
  /// Scratch for the routers' batched expansion step (search/router.h):
  /// the unvisited neighbors of the vertex being expanded and their
  /// batch-evaluated distances. Reused across expansions and queries so
  /// steady-state search never reallocates; contents are transient within
  /// one expansion.
  std::vector<uint32_t> batch_ids;
  std::vector<float> batch_dists;
  /// Per-query encoded query for quantized traversal (quant/
  /// quantized_index.cc): dim bytes, re-encoded at the start of each
  /// quantized search. Lives here so steady-state search never reallocates.
  std::vector<uint8_t> query_code;
  /// Optional per-query trace hook (docs/OBSERVABILITY.md): when non-null,
  /// routers record seed/expand/truncation events into it. Owned by the
  /// caller that armed it (the engine's SearchOne, or a test); BeginQuery
  /// intentionally leaves it alone — the owner sets and clears it around
  /// each traced query, so scratch reuse never leaks a stale sink.
  TraceSink* trace = nullptr;
};

/// Everything one in-flight query needs: visited stamps plus a reusable
/// candidate pool. The engine keeps a free list of these sized to its
/// concurrency, so steady-state batched search allocates nothing per query
/// beyond the result vector.
struct SearchScratch {
  explicit SearchScratch(uint32_t num_vertices)
      : ctx(num_vertices), pool(1) {}

  SearchContext ctx;
  CandidatePool pool;
};

}  // namespace weavess

#endif  // WEAVESS_CORE_SEARCH_CONTEXT_H_
