#include "core/thread_pool.h"

#include <algorithm>

namespace weavess {

ThreadPool::ThreadPool(uint32_t num_workers) {
  threads_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::DrainBatch(Batch& batch) {
  for (;;) {
    const uint32_t task =
        batch.next_task.fetch_add(1, std::memory_order_relaxed);
    if (task >= batch.num_tasks) return;
    std::exception_ptr error;
    try {
      (*batch.body)(task);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (error != nullptr && batch.first_error == nullptr) {
      batch.first_error = error;
    }
    if (--batch.unfinished == 0) batch.done_cv.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (stop_) return;
    // Drop exhausted batches (their owner erases them too; whichever side
    // gets there first wins) and pick the oldest batch with open tasks.
    if (pending_.front()->Exhausted()) {
      pending_.pop_front();
      continue;
    }
    const std::shared_ptr<Batch> batch = pending_.front();
    lock.unlock();
    DrainBatch(*batch);
    lock.lock();
  }
}

void ThreadPool::RunTasks(uint32_t num_tasks,
                          const std::function<void(uint32_t)>& body) {
  if (num_tasks == 0) return;
  auto batch = std::make_shared<Batch>();
  batch->body = &body;
  batch->num_tasks = num_tasks;
  batch->unfinished = num_tasks;

  const bool enlist_workers = !threads_.empty() && num_tasks > 1;
  if (enlist_workers) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back(batch);
    }
    work_cv_.notify_all();
  }

  DrainBatch(*batch);

  std::unique_lock<std::mutex> lock(mu_);
  batch->done_cv.wait(lock, [&] { return batch->unfinished == 0; });
  if (enlist_workers) {
    // Remove the (now exhausted) batch so the queue cannot grow while the
    // workers are parked.
    auto it = std::find(pending_.begin(), pending_.end(), batch);
    if (it != pending_.end()) pending_.erase(it);
  }
  const std::exception_ptr error = batch->first_error;
  lock.unlock();
  if (error != nullptr) std::rethrow_exception(error);
}

ThreadPool& SharedThreadPool() {
  static ThreadPool* const pool = new ThreadPool(
      std::max(4u, std::thread::hardware_concurrency()) - 1);
  return *pool;
}

}  // namespace weavess
