// Epoch-stamped visited marker. Resetting between queries is O(1): bump the
// epoch instead of clearing the array. Standard trick from HNSW-style
// implementations; shared by every routing strategy in search/.
#ifndef WEAVESS_CORE_VISITED_LIST_H_
#define WEAVESS_CORE_VISITED_LIST_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace weavess {

class VisitedList {
 public:
  explicit VisitedList(uint32_t num_elements)
      : stamps_(num_elements, 0), epoch_(0) {}

  /// Starts a new query; all elements become unvisited.
  void Reset() {
    if (++epoch_ == 0) {  // wrapped: do the rare full clear
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  bool Visited(uint32_t id) const { return stamps_[id] == epoch_; }

  void MarkVisited(uint32_t id) { stamps_[id] = epoch_; }

  /// Marks and reports whether the element was already visited.
  bool CheckAndMark(uint32_t id) {
    if (stamps_[id] == epoch_) return true;
    stamps_[id] = epoch_;
    return false;
  }

  uint32_t size() const { return static_cast<uint32_t>(stamps_.size()); }

  uint32_t epoch() const { return epoch_; }

  /// Test hook: jumps the epoch so a test can exercise the rare wrap-around
  /// full clear without 2^32 Reset calls. Stale stamps from earlier epochs
  /// are left in place on purpose — that is exactly the hazard the wrap
  /// clear must defuse.
  void SetEpochForTesting(uint32_t epoch) { epoch_ = epoch; }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_;
};

}  // namespace weavess

#endif  // WEAVESS_CORE_VISITED_LIST_H_
