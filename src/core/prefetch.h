// Software-prefetch helpers for the cache-conscious search hot path
// (docs/KERNELS.md). No-ops where the builtin is unavailable; prefetches
// are hints only and never change results.
#ifndef WEAVESS_CORE_PREFETCH_H_
#define WEAVESS_CORE_PREFETCH_H_

#include <cstddef>
#include <cstdint>

namespace weavess {

/// One-cache-line read prefetch into all cache levels.
inline void PrefetchLine(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Prefetches the first `bytes` of a region, capped at four cache lines —
/// enough to hide the first-touch miss of a vector row or adjacency block;
/// the hardware prefetcher follows the sequential remainder.
inline void PrefetchRegion(const void* p, size_t bytes) {
  constexpr size_t kLine = 64;
  constexpr size_t kMaxLines = 4;
  const auto* base = static_cast<const char*>(p);
  size_t lines = (bytes + kLine - 1) / kLine;
  if (lines > kMaxLines) lines = kMaxLines;
  for (size_t i = 0; i < lines; ++i) PrefetchLine(base + i * kLine);
}

}  // namespace weavess

#endif  // WEAVESS_CORE_PREFETCH_H_
