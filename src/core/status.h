// Recoverable error handling in the RocksDB/Arrow style: operations whose
// failure is caused by the outside world (missing files, corrupted bytes,
// bad arguments) return a Status / StatusOr<T> instead of aborting. The
// WEAVESS_CHECK macro remains reserved for true internal invariants whose
// violation means the program itself is broken (see README, "Error
// handling conventions").
#ifndef WEAVESS_CORE_STATUS_H_
#define WEAVESS_CORE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "core/check.h"

namespace weavess {

enum class StatusCode : int {
  kOk = 0,
  kIOError = 1,          // the environment failed us (open/read/write)
  kCorruption = 2,       // bytes exist but fail validation (CRC, bounds)
  kInvalidArgument = 3,  // the caller asked for something nonsensical
  kNotSupported = 4,     // recognized but unimplemented (future versions)
  kUnavailable = 5,      // transient overload — back off and retry
  kDeadlineExceeded = 6, // the request's deadline passed before completion
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

class Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;

  static Status OK() { return Status(); }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotSupported(std::string message) {
    return Status(StatusCode::kNotSupported, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or the Status explaining why there is none. Accessing the
/// value of a failed StatusOr is an internal invariant violation (aborts);
/// callers must test ok() or use the WEAVESS_ASSIGN_OR_RETURN macro.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    WEAVESS_CHECK(!status_.ok() && "StatusOr constructed from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  T& value() & {
    WEAVESS_CHECK(ok() && "value() on failed StatusOr");
    return *value_;
  }
  const T& value() const& {
    WEAVESS_CHECK(ok() && "value() on failed StatusOr");
    return *value_;
  }
  T&& value() && {
    WEAVESS_CHECK(ok() && "value() on failed StatusOr");
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace weavess

/// Propagates a non-OK Status out of the enclosing function.
#define WEAVESS_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::weavess::Status _weavess_status = (expr);       \
    if (!_weavess_status.ok()) return _weavess_status; \
  } while (0)

#define WEAVESS_STATUS_CONCAT_INNER(a, b) a##b
#define WEAVESS_STATUS_CONCAT(a, b) WEAVESS_STATUS_CONCAT_INNER(a, b)

/// WEAVESS_ASSIGN_OR_RETURN(auto x, Expr()) — unwraps a StatusOr, returning
/// the error Status to the caller on failure.
#define WEAVESS_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  auto WEAVESS_STATUS_CONCAT(_weavess_statusor_, __LINE__) = (rexpr);     \
  if (!WEAVESS_STATUS_CONCAT(_weavess_statusor_, __LINE__).ok()) {        \
    return WEAVESS_STATUS_CONCAT(_weavess_statusor_, __LINE__).status();  \
  }                                                                       \
  lhs = std::move(WEAVESS_STATUS_CONCAT(_weavess_statusor_, __LINE__)).value()

#endif  // WEAVESS_CORE_STATUS_H_
