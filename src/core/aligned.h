// Aligned allocation support for the SIMD distance kernels
// (docs/KERNELS.md). Dataset rows are padded to kRowAlignment bytes so
// every Row(i) pointer starts on a cache-line boundary: vector loads never
// split a cache line and the software prefetcher can address whole rows.
#ifndef WEAVESS_CORE_ALIGNED_H_
#define WEAVESS_CORE_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace weavess {

/// Alignment guarantee (bytes) for dataset row storage. One x86 cache line;
/// also the widest vector register (AVX-512) the kernels dispatch to.
inline constexpr size_t kRowAlignment = 64;

/// Minimal C++17-style allocator handing out kRowAlignment-aligned blocks.
/// All instantiations compare equal (stateless), so vectors using it are
/// freely copyable and movable.
template <typename T, size_t Alignment = kRowAlignment>
class AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment % alignof(T) == 0,
                "alignment must be a multiple of the type's alignment");

 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Alignment));
    return static_cast<T*>(p);
  }

  void deallocate(T* p, size_t n) {
    if (p == nullptr) return;
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// Float storage whose data() pointer is kRowAlignment-aligned.
using AlignedFloatVector = std::vector<float, AlignedAllocator<float>>;

}  // namespace weavess

#endif  // WEAVESS_CORE_ALIGNED_H_
