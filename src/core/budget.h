// Per-query search budgets. A budget does not change what a search visits —
// it only caps how much work the walk may spend before returning its
// best-so-far results, so a disconnected or adversarial graph cannot wedge
// a query thread. When a budget trips, QueryStats::truncated is set.
//
// Wall-clock deadlines are read through the Clock abstraction (core/clock.h):
// the default SteadyClock gives production behavior, while tests arm budgets
// against a VirtualClock so time-budget truncation is deterministic.
#ifndef WEAVESS_CORE_BUDGET_H_
#define WEAVESS_CORE_BUDGET_H_

#include <cstdint>

#include "core/clock.h"

namespace weavess {

struct SearchBudget {
  /// Caps distance evaluations (0 = unlimited). Checked once per expanded
  /// vertex, so the actual spend can overshoot by one adjacency list.
  uint64_t max_distance_evals = 0;

  bool has_deadline = false;
  /// Absolute deadline, in `clock` microseconds.
  uint64_t deadline_us = 0;
  /// Clock the deadline is measured against; never null when has_deadline.
  const Clock* clock = nullptr;

  static SearchBudget Unlimited() { return {}; }

  /// Builds a budget from SearchParams-style limits; 0 disables a limit.
  /// A null `clock` selects the process SteadyClock.
  static SearchBudget FromLimits(uint64_t max_evals, uint64_t time_budget_us,
                                 const Clock* clock = nullptr) {
    SearchBudget budget;
    budget.max_distance_evals = max_evals;
    if (time_budget_us > 0) {
      budget.clock = clock != nullptr ? clock : &SteadyClock();
      budget.has_deadline = true;
      budget.deadline_us = budget.clock->NowMicros() + time_budget_us;
    }
    return budget;
  }

  bool unlimited() const { return max_distance_evals == 0 && !has_deadline; }

  /// True once the walk must stop. The clock is only consulted when a
  /// deadline is armed, keeping unbudgeted searches free of syscalls.
  bool Exhausted(uint64_t distance_evals_so_far) const {
    if (max_distance_evals > 0 &&
        distance_evals_so_far >= max_distance_evals) {
      return true;
    }
    return has_deadline && clock->NowMicros() >= deadline_us;
  }
};

}  // namespace weavess

#endif  // WEAVESS_CORE_BUDGET_H_
