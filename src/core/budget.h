// Per-query search budgets. A budget does not change what a search visits —
// it only caps how much work the walk may spend before returning its
// best-so-far results, so a disconnected or adversarial graph cannot wedge
// a query thread. When a budget trips, QueryStats::truncated is set.
#ifndef WEAVESS_CORE_BUDGET_H_
#define WEAVESS_CORE_BUDGET_H_

#include <chrono>
#include <cstdint>

namespace weavess {

struct SearchBudget {
  /// Caps distance evaluations (0 = unlimited). Checked once per expanded
  /// vertex, so the actual spend can overshoot by one adjacency list.
  uint64_t max_distance_evals = 0;

  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline;

  static SearchBudget Unlimited() { return {}; }

  /// Builds a budget from SearchParams-style limits; 0 disables a limit.
  static SearchBudget FromLimits(uint64_t max_evals, uint64_t time_budget_us) {
    SearchBudget budget;
    budget.max_distance_evals = max_evals;
    if (time_budget_us > 0) {
      budget.has_deadline = true;
      budget.deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(time_budget_us);
    }
    return budget;
  }

  bool unlimited() const { return max_distance_evals == 0 && !has_deadline; }

  /// True once the walk must stop. The clock is only consulted when a
  /// deadline is armed, keeping unbudgeted searches free of syscalls.
  bool Exhausted(uint64_t distance_evals_so_far) const {
    if (max_distance_evals > 0 &&
        distance_evals_so_far >= max_distance_evals) {
      return true;
    }
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  }
};

}  // namespace weavess

#endif  // WEAVESS_CORE_BUDGET_H_
