// In-memory vector dataset: the finite set S ⊂ E^d of Definition 2.1. All
// algorithms in the library index a Dataset and search it with float
// queries of the same dimension.
//
// Storage is row-padded and 64-byte aligned (core/aligned.h): every Row(i)
// starts on a cache-line boundary so the SIMD distance kernels never split
// a cache line and prefetched rows land whole. The padding floats are
// zero-filled and invisible through the API (Row spans dim() floats).
#ifndef WEAVESS_CORE_DATASET_H_
#define WEAVESS_CORE_DATASET_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/aligned.h"
#include "core/check.h"

namespace weavess {

/// Row-major dense float matrix holding `size()` vectors of `dim()` floats
/// at a fixed `row_stride()` ≥ dim(). Copyable (a plain value type); moves
/// are cheap.
class Dataset {
 public:
  static_assert(kRowAlignment % sizeof(float) == 0,
                "row alignment must cover whole floats");
  /// Floats per row-alignment unit; row strides are rounded up to this.
  static constexpr uint32_t kStrideQuantum =
      static_cast<uint32_t>(kRowAlignment / sizeof(float));

  Dataset() = default;

  /// Copies `data` (which must hold `num * dim` contiguous floats) into
  /// aligned padded storage.
  Dataset(uint32_t num, uint32_t dim, const std::vector<float>& data);

  /// Copies `num * dim` floats from `src` into aligned padded storage.
  /// `src` carries no alignment requirement — fvecs readers and network
  /// buffers hand in arbitrary byte offsets.
  Dataset(uint32_t num, uint32_t dim, const float* src);

  /// Allocates a zero-filled dataset.
  static Dataset Zeros(uint32_t num, uint32_t dim);

  uint32_t size() const { return num_; }
  uint32_t dim() const { return dim_; }
  bool empty() const { return num_ == 0; }

  /// Floats between consecutive rows (dim() rounded up to the alignment
  /// quantum). The batched distance kernels address rows as
  /// RowBase() + id * row_stride().
  uint32_t row_stride() const { return stride_; }

  /// Base pointer of the row storage (64-byte aligned), for the batched
  /// kernels. Null for an empty dataset.
  const float* RowBase() const { return data_.data(); }

  /// Pointer to the i-th vector (valid for `dim()` floats, 64-byte
  /// aligned).
  const float* Row(uint32_t i) const {
    WEAVESS_DCHECK(i < num_);
    return data_.data() + static_cast<size_t>(i) * stride_;
  }
  float* MutableRow(uint32_t i) {
    WEAVESS_DCHECK(i < num_);
    return data_.data() + static_cast<size_t>(i) * stride_;
  }

  /// The padded aligned backing store (size() * row_stride() floats,
  /// padding zero-filled). Equality of two raws implies equality of the
  /// logical matrices — padding is deterministic.
  const AlignedFloatVector& raw() const { return data_; }

  /// Bytes consumed by the vector storage, padding included (used in
  /// index-size accounting).
  size_t MemoryBytes() const { return data_.size() * sizeof(float); }

  /// Returns a dataset holding the rows listed in `ids`, in order.
  Dataset Subset(const std::vector<uint32_t>& ids) const;

  /// Component-wise mean of all rows; the "approximate centroid" seed used
  /// by NSG and Vamana is the dataset point nearest to this.
  std::vector<float> Mean() const;

  /// Scales every row to unit l2 norm (zero rows are left untouched).
  /// After normalization, l2-nearest-neighbor search is equivalent to
  /// cosine-similarity search — how angular-metric corpora (GloVe-style
  /// embeddings) are handled throughout the ANNS literature.
  void NormalizeRows();

 private:
  uint32_t num_ = 0;
  uint32_t dim_ = 0;
  uint32_t stride_ = 0;
  AlignedFloatVector data_;
};

}  // namespace weavess

#endif  // WEAVESS_CORE_DATASET_H_
