// In-memory vector dataset: the finite set S ⊂ E^d of Definition 2.1. All
// algorithms in the library index a Dataset and search it with float
// queries of the same dimension.
#ifndef WEAVESS_CORE_DATASET_H_
#define WEAVESS_CORE_DATASET_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/check.h"

namespace weavess {

/// Row-major dense float matrix holding `size()` vectors of `dim()` floats.
/// Copyable (a plain value type); moves are cheap.
class Dataset {
 public:
  Dataset() = default;

  /// Takes ownership of `data`, which must hold `num * dim` floats.
  Dataset(uint32_t num, uint32_t dim, std::vector<float> data);

  /// Allocates a zero-filled dataset.
  static Dataset Zeros(uint32_t num, uint32_t dim);

  uint32_t size() const { return num_; }
  uint32_t dim() const { return dim_; }
  bool empty() const { return num_ == 0; }

  /// Pointer to the i-th vector (valid for `dim()` floats).
  const float* Row(uint32_t i) const {
    WEAVESS_DCHECK(i < num_);
    return data_.data() + static_cast<size_t>(i) * dim_;
  }
  float* MutableRow(uint32_t i) {
    WEAVESS_DCHECK(i < num_);
    return data_.data() + static_cast<size_t>(i) * dim_;
  }

  const std::vector<float>& raw() const { return data_; }

  /// Bytes consumed by the vector payload (used in index-size accounting).
  size_t MemoryBytes() const { return data_.size() * sizeof(float); }

  /// Returns a dataset holding the rows listed in `ids`, in order.
  Dataset Subset(const std::vector<uint32_t>& ids) const;

  /// Component-wise mean of all rows; the "approximate centroid" seed used
  /// by NSG and Vamana is the dataset point nearest to this.
  std::vector<float> Mean() const;

  /// Scales every row to unit l2 norm (zero rows are left untouched).
  /// After normalization, l2-nearest-neighbor search is equivalent to
  /// cosine-similarity search — how angular-metric corpora (GloVe-style
  /// embeddings) are handled throughout the ANNS literature.
  void NormalizeRows();

 private:
  uint32_t num_ = 0;
  uint32_t dim_ = 0;
  std::vector<float> data_;
};

}  // namespace weavess

#endif  // WEAVESS_CORE_DATASET_H_
