// Time source abstraction behind every wall-clock budget and deadline
// check. Production code reads the process-wide monotonic SteadyClock();
// tests inject a VirtualClock that only moves when explicitly advanced, so
// time-budget truncation and overload shedding become deterministic,
// reproducible decisions instead of scheduler noise (docs/SERVING.md).
#ifndef WEAVESS_CORE_CLOCK_H_
#define WEAVESS_CORE_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace weavess {

/// Monotonic microsecond clock. Implementations must be safe to read from
/// any number of threads concurrently.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since an arbitrary fixed origin; never decreases.
  virtual uint64_t NowMicros() const = 0;
};

/// The process-wide std::chrono::steady_clock. This is what a null Clock*
/// resolves to everywhere a clock is optional.
const Clock& SteadyClock();

/// Manually driven clock for deterministic tests: NowMicros returns exactly
/// what the test has set, regardless of real elapsed time. Thread-safe —
/// chaos doubles advance it from worker threads while budget checks read it.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(uint64_t start_us = 0) : now_us_(start_us) {}

  uint64_t NowMicros() const override {
    return now_us_.load(std::memory_order_acquire);
  }

  void AdvanceMicros(uint64_t delta_us) {
    now_us_.fetch_add(delta_us, std::memory_order_acq_rel);
  }

  /// Jumps to an absolute reading. Only moves forward (a monotonic clock
  /// must never run backwards; a smaller value is ignored).
  void SetMicros(uint64_t now_us) {
    uint64_t current = now_us_.load(std::memory_order_acquire);
    while (now_us > current &&
           !now_us_.compare_exchange_weak(current, now_us,
                                          std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<uint64_t> now_us_;
};

/// Chaos double: a clock that runs at `rate` times its base, plus a fixed
/// offset — a machine whose TSC drifts or jumped across a VM migration.
/// Deterministic whenever the base clock is.
class SkewedClock final : public Clock {
 public:
  SkewedClock(const Clock& base, double rate, uint64_t offset_us = 0)
      : base_(base), rate_(rate), offset_us_(offset_us) {}

  uint64_t NowMicros() const override {
    return static_cast<uint64_t>(
               static_cast<double>(base_.NowMicros()) * rate_) +
           offset_us_;
  }

 private:
  const Clock& base_;
  double rate_;
  uint64_t offset_us_;
};

}  // namespace weavess

#endif  // WEAVESS_CORE_CLOCK_H_
