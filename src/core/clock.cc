#include "core/clock.h"

#include <chrono>

namespace weavess {

namespace {

class SteadyClockImpl final : public Clock {
 public:
  uint64_t NowMicros() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace

const Clock& SteadyClock() {
  static const SteadyClockImpl clock;
  return clock;
}

}  // namespace weavess
