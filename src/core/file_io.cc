#include "core/file_io.h"

#include <cerrno>
#include <cstring>

namespace weavess {

namespace {

std::string ErrnoMessage(const std::string& action, const std::string& path) {
  return action + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

StdioWriter::~StdioWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status StdioWriter::Open(const std::string& path, bool append) {
  WEAVESS_CHECK(file_ == nullptr);
  file_ = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (file_ == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open for writing", path));
  }
  path_ = path;
  return Status::OK();
}

Status StdioWriter::Flush() {
  if (file_ == nullptr) return Status::IOError("writer is not open");
  if (std::fflush(file_) != 0) {
    return Status::IOError(ErrnoMessage("flush failed for", path_));
  }
  return Status::OK();
}

Status StdioWriter::Append(const void* data, size_t n) {
  if (file_ == nullptr) return Status::IOError("writer is not open");
  if (n == 0) return Status::OK();
  if (std::fwrite(data, 1, n, file_) != n) {
    return Status::IOError(ErrnoMessage("write failed to", path_));
  }
  return Status::OK();
}

Status StdioWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  std::FILE* file = file_;
  file_ = nullptr;
  if (std::fclose(file) != 0) {
    return Status::IOError(ErrnoMessage("close failed for", path_));
  }
  return Status::OK();
}

StdioReader::~StdioReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status StdioReader::Open(const std::string& path) {
  WEAVESS_CHECK(file_ == nullptr);
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open for reading", path));
  }
  path_ = path;
  return Status::OK();
}

StatusOr<size_t> StdioReader::Read(void* buffer, size_t n) {
  if (file_ == nullptr) return Status::IOError("reader is not open");
  const size_t got = std::fread(buffer, 1, n, file_);
  if (got < n && std::ferror(file_) != 0) {
    return Status::IOError(ErrnoMessage("read failed from", path_));
  }
  return got;
}

Status ReadAll(Reader& reader, std::string* out) {
  char chunk[1 << 16];
  while (true) {
    WEAVESS_ASSIGN_OR_RETURN(const size_t got,
                             reader.Read(chunk, sizeof(chunk)));
    if (got == 0) return Status::OK();
    out->append(chunk, got);
  }
}

Status ReadFileToString(const std::string& path, std::string* out) {
  StdioReader reader;
  WEAVESS_RETURN_IF_ERROR(reader.Open(path));
  return ReadAll(reader, out);
}

Status WriteStringToFile(const std::string& data, const std::string& path) {
  StdioWriter writer;
  WEAVESS_RETURN_IF_ERROR(writer.Open(path));
  WEAVESS_RETURN_IF_ERROR(writer.Append(data.data(), data.size()));
  return writer.Close();
}

}  // namespace weavess
