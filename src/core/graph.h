// The graph index G(V, E) of Definition 2.3: adjacency lists over vertex ids
// that correspond 1:1 to dataset rows. Directed by convention; undirected
// graphs (NSW, DPG, k-DR) store both arc directions.
#ifndef WEAVESS_CORE_GRAPH_H_
#define WEAVESS_CORE_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/check.h"

namespace weavess {

class Graph {
 public:
  Graph() = default;
  explicit Graph(uint32_t num_vertices) : adjacency_(num_vertices) {}

  uint32_t size() const { return static_cast<uint32_t>(adjacency_.size()); }

  const std::vector<uint32_t>& Neighbors(uint32_t v) const {
    WEAVESS_DCHECK(v < adjacency_.size());
    return adjacency_[v];
  }
  std::vector<uint32_t>& MutableNeighbors(uint32_t v) {
    WEAVESS_DCHECK(v < adjacency_.size());
    return adjacency_[v];
  }

  /// Appends the directed edge u -> v (no duplicate check; see AddEdgeUnique).
  void AddEdge(uint32_t u, uint32_t v) {
    WEAVESS_DCHECK(u < size() && v < size());
    adjacency_[u].push_back(v);
  }

  /// Appends u -> v only if absent. Linear scan: adjacency lists are short.
  /// Returns true if the edge was added.
  bool AddEdgeUnique(uint32_t u, uint32_t v);

  /// Adds both u -> v and v -> u, skipping duplicates.
  void AddUndirectedEdge(uint32_t u, uint32_t v) {
    AddEdgeUnique(u, v);
    AddEdgeUnique(v, u);
  }

  bool HasEdge(uint32_t u, uint32_t v) const;

  uint64_t NumEdges() const;

  /// Bytes of the adjacency payload: the index-size metric of Figure 6
  /// counts 4 bytes per stored arc plus per-vertex list headers.
  size_t MemoryBytes() const;

  /// Sorts every adjacency list (used before set-intersection metrics).
  void SortNeighborLists();

  /// Caps every adjacency list at `max_degree`, keeping the first entries
  /// (callers order lists by distance before truncation).
  void TruncateDegrees(uint32_t max_degree);

  /// Binary persistence: [u32 n] then per vertex [u32 degree][ids...],
  /// little-endian. WEAVESS_CHECK-fails on I/O errors or malformed input.
  void Save(const std::string& path) const;
  static Graph Load(const std::string& path);

 private:
  std::vector<std::vector<uint32_t>> adjacency_;
};

}  // namespace weavess

#endif  // WEAVESS_CORE_GRAPH_H_
