// The graph index G(V, E) of Definition 2.3: adjacency lists over vertex ids
// that correspond 1:1 to dataset rows. Directed by convention; undirected
// graphs (NSW, DPG, k-DR) store both arc directions.
#ifndef WEAVESS_CORE_GRAPH_H_
#define WEAVESS_CORE_GRAPH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/check.h"
#include "core/status.h"

namespace weavess {

class Graph {
 public:
  Graph() = default;
  explicit Graph(uint32_t num_vertices) : adjacency_(num_vertices) {}

  uint32_t size() const { return static_cast<uint32_t>(adjacency_.size()); }

  const std::vector<uint32_t>& Neighbors(uint32_t v) const {
    WEAVESS_DCHECK(v < adjacency_.size());
    return adjacency_[v];
  }
  std::vector<uint32_t>& MutableNeighbors(uint32_t v) {
    WEAVESS_DCHECK(v < adjacency_.size());
    return adjacency_[v];
  }

  /// Appends the directed edge u -> v (no duplicate check; see AddEdgeUnique).
  void AddEdge(uint32_t u, uint32_t v) {
    WEAVESS_DCHECK(u < size() && v < size());
    adjacency_[u].push_back(v);
  }

  /// Appends u -> v only if absent. Linear scan: adjacency lists are short.
  /// Returns true if the edge was added.
  bool AddEdgeUnique(uint32_t u, uint32_t v);

  /// Adds both u -> v and v -> u, skipping duplicates.
  void AddUndirectedEdge(uint32_t u, uint32_t v) {
    AddEdgeUnique(u, v);
    AddEdgeUnique(v, u);
  }

  bool HasEdge(uint32_t u, uint32_t v) const;

  uint64_t NumEdges() const;

  /// Bytes of the adjacency payload: the index-size metric of Figure 6
  /// counts 4 bytes per stored arc plus per-vertex list headers.
  size_t MemoryBytes() const;

  /// Sorts every adjacency list (used before set-intersection metrics).
  void SortNeighborLists();

  /// Caps every adjacency list at `max_degree`, keeping the first entries
  /// (callers order lists by distance before truncation).
  void TruncateDegrees(uint32_t max_degree);

  /// Persists the graph in the versioned, CRC32C-checksummed format of
  /// docs/PERSISTENCE.md. `metadata` is an opaque section for algorithm
  /// information (name, build parameters); it round-trips via Load.
  /// Returns kIOError if the file cannot be written.
  Status Save(const std::string& path, std::string_view metadata = {}) const;

  /// Loads a saved graph, verifying magic, version and every section CRC.
  /// Returns kCorruption with a byte-offset diagnostic on any mismatch
  /// (including seed-era headerless files) — never aborts, never returns a
  /// silently wrong graph. Fills `*metadata` when non-null.
  static StatusOr<Graph> Load(const std::string& path,
                              std::string* metadata = nullptr);

 private:
  std::vector<std::vector<uint32_t>> adjacency_;
};

}  // namespace weavess

#endif  // WEAVESS_CORE_GRAPH_H_
