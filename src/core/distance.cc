#include "core/distance.h"

namespace weavess {

float L2Sqr(const float* a, const float* b, uint32_t dim) {
  float sum = 0.0f;
  for (uint32_t i = 0; i < dim; ++i) {
    const float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

float Dot(const float* a, const float* b, uint32_t dim) {
  float sum = 0.0f;
  for (uint32_t i = 0; i < dim; ++i) sum += a[i] * b[i];
  return sum;
}

float NormSqr(const float* a, uint32_t dim) {
  float sum = 0.0f;
  for (uint32_t i = 0; i < dim; ++i) sum += a[i] * a[i];
  return sum;
}

}  // namespace weavess
