// Dispatch layer over the per-ISA kernels (distance_kernels.cc). The active
// level is process-global: picked once from the CPU (or the
// WEAVESS_FORCE_KERNEL override), swappable via SetKernelLevel. Because
// every level computes the identical canonical reduction, switching levels
// never changes a result — only how fast it arrives — which is what lets
// the golden-recall pins hold bit-for-bit at every dispatch level.
#include "core/distance.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/distance_kernels.h"

namespace weavess {

namespace {

std::atomic<const detail::KernelOps*> g_ops{nullptr};
std::atomic<KernelLevel> g_level{KernelLevel::kScalar};

// First-use initialization: WEAVESS_FORCE_KERNEL when valid, else the best
// CPU-supported level. Benignly racy — concurrent first callers compute
// the same answer.
const detail::KernelOps* InitDispatch() {
  KernelLevel level = BestSupportedKernelLevel();
  if (const char* force = std::getenv("WEAVESS_FORCE_KERNEL")) {
    KernelLevel parsed;
    if (!KernelLevelFromName(force, &parsed)) {
      std::fprintf(stderr,
                   "weavess: WEAVESS_FORCE_KERNEL='%s' is not a kernel level "
                   "(scalar|avx2|avx512|neon); using %s\n",
                   force, KernelLevelName(level));
    } else if (!KernelLevelSupported(parsed)) {
      std::fprintf(stderr,
                   "weavess: WEAVESS_FORCE_KERNEL=%s is not supported on "
                   "this CPU; using %s\n",
                   force, KernelLevelName(level));
    } else {
      level = parsed;
    }
  }
  const detail::KernelOps* ops = detail::OpsFor(level);
  g_level.store(level, std::memory_order_relaxed);
  g_ops.store(ops, std::memory_order_release);
  return ops;
}

inline const detail::KernelOps* Ops() {
  const detail::KernelOps* ops = g_ops.load(std::memory_order_acquire);
  return ops != nullptr ? ops : InitDispatch();
}

}  // namespace

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kAvx2:
      return "avx2";
    case KernelLevel::kAvx512:
      return "avx512";
    case KernelLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

bool KernelLevelFromName(const char* name, KernelLevel* out) {
  if (name == nullptr || out == nullptr) return false;
  for (KernelLevel level :
       {KernelLevel::kScalar, KernelLevel::kAvx2, KernelLevel::kAvx512,
        KernelLevel::kNeon}) {
    if (std::strcmp(name, KernelLevelName(level)) == 0) {
      *out = level;
      return true;
    }
  }
  return false;
}

bool KernelLevelSupported(KernelLevel level) {
  return detail::OpsFor(level) != nullptr;
}

KernelLevel BestSupportedKernelLevel() {
  // Widest first. AVX-512 beats AVX2 beats scalar; NEON is the only
  // vector tier on ARM.
  for (KernelLevel level :
       {KernelLevel::kAvx512, KernelLevel::kAvx2, KernelLevel::kNeon}) {
    if (detail::OpsFor(level) != nullptr) return level;
  }
  return KernelLevel::kScalar;
}

KernelLevel ActiveKernelLevel() {
  Ops();  // force first-use initialization
  return g_level.load(std::memory_order_relaxed);
}

bool SetKernelLevel(KernelLevel level) {
  const detail::KernelOps* ops = detail::OpsFor(level);
  if (ops == nullptr) return false;
  g_level.store(level, std::memory_order_relaxed);
  g_ops.store(ops, std::memory_order_release);
  return true;
}

float L2Sqr(const float* a, const float* b, uint32_t dim) {
  return Ops()->l2(a, b, dim);
}

float Dot(const float* a, const float* b, uint32_t dim) {
  return Ops()->dot(a, b, dim);
}

float NormSqr(const float* a, uint32_t dim) { return Ops()->norm(a, dim); }

void L2SqrBatch(const float* query, const float* base, size_t stride,
                uint32_t dim, const uint32_t* ids, size_t n, float* out) {
  Ops()->l2_batch(query, base, stride, dim, ids, n, out);
}

uint32_t L2SqrSQ8(const uint8_t* query_code, const uint8_t* code,
                  uint32_t dim) {
  return Ops()->l2_sq8(query_code, code, dim);
}

void L2SqrSQ8Batch(const uint8_t* query_code, const uint8_t* codes,
                   size_t stride_bytes, uint32_t dim, const uint32_t* ids,
                   size_t n, float* out) {
  Ops()->l2_sq8_batch(query_code, codes, stride_bytes, dim, ids, n, out);
}

float L2SqrScalar(const float* a, const float* b, uint32_t dim) {
  return detail::OpsFor(KernelLevel::kScalar)->l2(a, b, dim);
}

float DotScalar(const float* a, const float* b, uint32_t dim) {
  return detail::OpsFor(KernelLevel::kScalar)->dot(a, b, dim);
}

float NormSqrScalar(const float* a, uint32_t dim) {
  return detail::OpsFor(KernelLevel::kScalar)->norm(a, dim);
}

uint32_t L2SqrSQ8Scalar(const uint8_t* query_code, const uint8_t* code,
                        uint32_t dim) {
  return detail::OpsFor(KernelLevel::kScalar)->l2_sq8(query_code, code, dim);
}

}  // namespace weavess
