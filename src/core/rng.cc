#include "core/rng.h"

#include <cmath>
#include <unordered_set>

#include "core/check.h"

namespace weavess {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  WEAVESS_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

std::vector<uint32_t> Rng::SampleDistinct(uint32_t population, uint32_t count) {
  WEAVESS_CHECK(count <= population);
  std::vector<uint32_t> result;
  result.reserve(count);
  if (count == 0) return result;
  // For dense samples a partial Fisher-Yates over an index array is cheaper;
  // for sparse samples use rejection with a hash set (Floyd-style).
  if (count * 4 >= population) {
    std::vector<uint32_t> all(population);
    for (uint32_t i = 0; i < population; ++i) all[i] = i;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t j = i + static_cast<uint32_t>(NextBounded(population - i));
      std::swap(all[i], all[j]);
      result.push_back(all[i]);
    }
  } else {
    std::unordered_set<uint32_t> seen;
    seen.reserve(count * 2);
    while (result.size() < count) {
      auto v = static_cast<uint32_t>(NextBounded(population));
      if (seen.insert(v).second) result.push_back(v);
    }
  }
  return result;
}

uint64_t HashBytes(const void* bytes, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  // Final avalanche (SplitMix64 finalizer) so nearby queries do not get
  // correlated RNG streams.
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace weavess
