// The uniform facade over all graph-based ANNS algorithms (Definition 2.3):
// build an index over a dataset, search it with per-query statistics, and
// expose the graph for the structural metrics of §5.
#ifndef WEAVESS_CORE_INDEX_H_
#define WEAVESS_CORE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/clock.h"
#include "core/dataset.h"
#include "core/graph.h"
#include "core/search_context.h"

namespace weavess {

/// Knobs shared by all search routines. Not every field applies to every
/// algorithm; unused fields are ignored (e.g., epsilon outside NGT/k-DR).
struct SearchParams {
  /// Number of nearest neighbors to return (Recall@k's k).
  uint32_t k = 10;
  /// Candidate-set size L (the CS metric of Table 5; HNSW's ef).
  uint32_t pool_size = 100;
  /// Range-search expansion factor ε (NGT, k-DR).
  float epsilon = 0.10f;
  /// Extra post-convergence expansions (FANNG's backtracking).
  uint32_t backtrack = 100;
  /// Two-stage rescoring breadth for quantized indexes (`SQ8:<Algo>`): the
  /// traversal runs on SQ8 codes and the closest rescore_factor * k
  /// quantized candidates are re-ranked with exact float distances before
  /// the final top-k (docs/QUANTIZATION.md). Clamped to ≥ 1; ignored by
  /// float indexes.
  uint32_t rescore_factor = 4;
  /// Graceful-degradation budgets (0 = unlimited). When a budget trips, the
  /// search stops where it is, returns its best-so-far results, and sets
  /// QueryStats::truncated — a disconnected or adversarial graph cannot
  /// wedge a query thread. Checked per expanded vertex, so the actual spend
  /// may overshoot max_distance_evals by one adjacency list.
  uint64_t max_distance_evals = 0;
  uint64_t time_budget_us = 0;
  /// Clock that time_budget_us deadlines are measured against. nullptr
  /// selects the process SteadyClock; tests and the serving layer inject a
  /// VirtualClock so wall-clock truncation is deterministic (core/clock.h).
  const Clock* clock = nullptr;
};

/// Per-query measurements backing Speedup (= |S| / distance_evals) and the
/// query-path-length metric PL (= hops, expanded vertices).
struct QueryStats {
  uint64_t distance_evals = 0;
  uint64_t hops = 0;
  /// NDC split for quantized two-stage search: evaluations spent on SQ8
  /// codes during traversal vs exact float evaluations spent re-ranking
  /// the candidate pool. distance_evals is their sum for quantized
  /// indexes; both stay 0 for float indexes.
  uint64_t quantized_evals = 0;
  uint64_t rescore_evals = 0;
  /// True when a SearchParams budget tripped and the results are the
  /// best-so-far prefix of the walk rather than a converged search.
  bool truncated = false;
  /// True when the result was produced in a degraded serving mode: a
  /// quality tier below full (degradation ladder) or the brute-force
  /// fallback after an index-load failure (search/serving.h). Algorithms
  /// never set this themselves; the serving layer owns it.
  bool degraded = false;
};

/// Construction-side measurements.
struct BuildStats {
  double seconds = 0.0;
  uint64_t distance_evals = 0;
};

/// Abstract graph-based ANNS index. Implementations keep a pointer to the
/// dataset passed to Build (the caller keeps it alive). A built index is
/// immutable: SearchWith is const and touches no index state beyond reads,
/// so any number of threads may search concurrently as long as each brings
/// its own SearchScratch. Results are a pure function of (index, query,
/// params) — search-time randomness is derived from the query bytes, never
/// from mutable RNG state — which is what lets the concurrent engine
/// guarantee bit-for-bit identical results at any thread count.
class AnnIndex {
 public:
  virtual ~AnnIndex() = default;

  /// Builds the index over `data`; may be called once per instance.
  virtual void Build(const Dataset& data) = 0;

  /// Thread-compatible search: returns the ids of the approximate k
  /// nearest neighbors of `query`, closest first, using caller-owned
  /// scratch (sized to at least graph().size() vertices). `stats`, when
  /// given, receives this query's counters. Concurrent calls on distinct
  /// scratch objects are safe.
  virtual std::vector<uint32_t> SearchWith(SearchScratch& scratch,
                                           const float* query,
                                           const SearchParams& params,
                                           QueryStats* stats = nullptr)
      const = 0;

  /// Single-threaded convenience wrapper over SearchWith using scratch
  /// owned by the index. Not safe to call concurrently on one index; the
  /// concurrent engine (search/engine.h) uses SearchWith directly.
  std::vector<uint32_t> Search(const float* query, const SearchParams& params,
                               QueryStats* stats = nullptr) {
    const uint32_t num_vertices = graph().size();
    if (scratch_ == nullptr || scratch_->ctx.visited.size() < num_vertices) {
      scratch_ = std::make_unique<SearchScratch>(num_vertices);
    }
    return SearchWith(*scratch_, query, params, stats);
  }

  /// The (bottom-layer) graph index, for GQ/AD/CC metrics.
  virtual const Graph& graph() const = 0;

  /// Bytes of the graph plus any auxiliary structures (trees, hash tables,
  /// extra layers) — the index-size metric of Figure 6. Excludes the raw
  /// vectors, which every algorithm shares equally.
  virtual size_t IndexMemoryBytes() const = 0;

  virtual BuildStats build_stats() const = 0;

  virtual std::string name() const = 0;

 private:
  // Lazily sized scratch backing the Search convenience wrapper.
  std::unique_ptr<SearchScratch> scratch_;
};

}  // namespace weavess

#endif  // WEAVESS_CORE_INDEX_H_
