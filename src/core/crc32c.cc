#include "core/crc32c.h"

namespace weavess {

namespace {

// Reflected CRC32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Crc32cTable {
  uint32_t entries[256];

  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable* const kTable = new Crc32cTable();
  return *kTable;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  const uint32_t* table = Table().entries;
  uint32_t state = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    state = table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state ^ 0xFFFFFFFFu;
}

}  // namespace weavess
