// Euclidean distance kernels and the distance-evaluation counter that backs
// the paper's Speedup metric (Speedup = |S| / NDC, §5.1).
//
// The survey removed SIMD intrinsics from every algorithm for fairness; we
// likewise use plain scalar loops and let the compiler vectorize.
#ifndef WEAVESS_CORE_DISTANCE_H_
#define WEAVESS_CORE_DISTANCE_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "core/dataset.h"

namespace weavess {

/// Squared Euclidean distance between two d-dimensional vectors. All graph
/// algorithms compare squared distances (monotone in the true distance), so
/// the sqrt is deferred to the API boundary.
float L2Sqr(const float* a, const float* b, uint32_t dim);

/// Euclidean (l2) distance, Equation 1 of the paper.
inline float L2(const float* a, const float* b, uint32_t dim) {
  return std::sqrt(L2Sqr(a, b, dim));
}

/// Inner product (used by tree splits and PCA, not as a search metric).
float Dot(const float* a, const float* b, uint32_t dim);

/// Squared l2 norm.
float NormSqr(const float* a, uint32_t dim);

/// Counts distance evaluations. One DistanceCounter is threaded through each
/// build or search call; NDC (number of distance computations) per query is
/// the paper's machine-independent efficiency measure.
struct DistanceCounter {
  uint64_t count = 0;
};

/// Distance oracle over a dataset: bundles the data, the metric, and the
/// evaluation counter so call sites cannot forget to count.
class DistanceOracle {
 public:
  explicit DistanceOracle(const Dataset& data, DistanceCounter* counter)
      : data_(&data), counter_(counter) {}

  /// Distance between stored points a and b.
  float Between(uint32_t a, uint32_t b) {
    Count();
    return L2Sqr(data_->Row(a), data_->Row(b), data_->dim());
  }

  /// Distance between a query vector and stored point id.
  float ToQuery(const float* query, uint32_t id) {
    Count();
    return L2Sqr(query, data_->Row(id), data_->dim());
  }

  /// Distance between a query and an arbitrary vector (e.g., a tree
  /// centroid). Counted: centroid comparisons are real query-time work.
  float ToVector(const float* query, const float* v) {
    Count();
    return L2Sqr(query, v, data_->dim());
  }

  const Dataset& data() const { return *data_; }
  uint32_t dim() const { return data_->dim(); }
  uint32_t size() const { return data_->size(); }
  uint64_t evaluations() const { return counter_ ? counter_->count : 0; }

 private:
  void Count() {
    if (counter_ != nullptr) ++counter_->count;
  }

  const Dataset* data_;
  DistanceCounter* counter_;
};

}  // namespace weavess

#endif  // WEAVESS_CORE_DISTANCE_H_
