// Distance kernels and the distance-evaluation counter that backs the
// paper's Speedup metric (Speedup = |S| / NDC, §5.1).
//
// The survey removed SIMD intrinsics from every algorithm for fairness; we
// keep that fairness a different way: runtime-dispatched vectorized kernels
// (AVX2 / AVX-512 / NEON, scalar fallback) that are *bit-for-bit identical*
// across dispatch levels, so recall, NDC, and traversal order never depend
// on the machine the binary landed on. Every kernel — the scalar reference
// included — computes the same canonical 16-lane partial-sum reduction
// (docs/KERNELS.md); the differential suite in tests/kernel_test.cc pins
// the equivalence over an exhaustive dim × alignment × dispatch matrix.
#ifndef WEAVESS_CORE_DISTANCE_H_
#define WEAVESS_CORE_DISTANCE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dataset.h"

namespace weavess {

// ---------------------------------------------------------------- dispatch

/// Instruction-set tiers the distance kernels dispatch across. Values are
/// stable (they surface in the `kernel.dispatch` metrics gauge and in
/// BENCH_kernels.json): 0 scalar, 1 AVX2, 2 AVX-512, 3 NEON.
enum class KernelLevel : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

/// Lowercase name used by WEAVESS_FORCE_KERNEL, the metrics taxonomy, and
/// the bench JSON ("scalar", "avx2", "avx512", "neon").
const char* KernelLevelName(KernelLevel level);

/// Parses a WEAVESS_FORCE_KERNEL value; returns false on an unknown name.
bool KernelLevelFromName(const char* name, KernelLevel* out);

/// True when the running CPU can execute `level`. kScalar is always true.
bool KernelLevelSupported(KernelLevel level);

/// The widest supported level — the default dispatch choice.
KernelLevel BestSupportedKernelLevel();

/// Level the free-function kernels below currently dispatch to. On first
/// use this initializes from the WEAVESS_FORCE_KERNEL environment variable
/// when set to a supported level name (unknown or unsupported values warn
/// on stderr and fall back), else from BestSupportedKernelLevel().
KernelLevel ActiveKernelLevel();

/// Re-points dispatch at `level`; returns false (and changes nothing) when
/// the CPU does not support it. Not intended for concurrent use with
/// in-flight searches: tests and tools set it up front. Because all levels
/// are bit-for-bit equivalent, switching never changes results — only speed.
bool SetKernelLevel(KernelLevel level);

// ----------------------------------------------------------------- kernels

/// Squared Euclidean distance between two d-dimensional vectors. All graph
/// algorithms compare squared distances (monotone in the true distance), so
/// the sqrt is deferred to the API boundary.
float L2Sqr(const float* a, const float* b, uint32_t dim);

/// Euclidean (l2) distance, Equation 1 of the paper.
inline float L2(const float* a, const float* b, uint32_t dim) {
  return std::sqrt(L2Sqr(a, b, dim));
}

/// Inner product (used by tree splits and PCA, not as a search metric).
float Dot(const float* a, const float* b, uint32_t dim);

/// Squared l2 norm.
float NormSqr(const float* a, uint32_t dim);

/// Batched one-query-vs-many-points form: out[i] = L2Sqr(query, row ids[i])
/// where row r starts at `base + r * stride` floats and spans `dim` floats
/// (stride ≥ dim; dataset rows are alignment-padded). Bit-for-bit equal to
/// n single-pair calls; the batch form adds software prefetch of upcoming
/// rows, which is where the gather-heavy search loops win their
/// memory-level parallelism. `ids` may repeat; n may be 0.
void L2SqrBatch(const float* query, const float* base, size_t stride,
                uint32_t dim, const uint32_t* ids, size_t n, float* out);

/// Symmetric quantized squared L2 in code space: Σ_d (qcode[d] - code[d])²
/// over two SQ8 code rows — the query is encoded once per search with the
/// same per-dimension codec (QuantizedDataset::EncodeQuery), so traversal
/// ranks candidates by squared distance in the codec's normalized space.
/// Pure integer arithmetic: exact, associative, and therefore bit-for-bit
/// identical across every dispatch level by construction — no reduction-
/// order discipline needed, unlike the float kernels (docs/QUANTIZATION.md).
/// The uint32 sum cannot overflow below dim 66052 (dim * 255²).
uint32_t L2SqrSQ8(const uint8_t* query_code, const uint8_t* code,
                  uint32_t dim);

/// Batched quantized form: out[i] = (float)L2SqrSQ8(query_code, codes +
/// ids[i] * stride_bytes, dim). The float conversion (round-to-nearest,
/// deterministic) happens here so candidate pools consume quantized and
/// exact distances through one type. Same prefetching contract as
/// L2SqrBatch; code rows stride in bytes because codes are one byte per
/// dimension.
void L2SqrSQ8Batch(const uint8_t* query_code, const uint8_t* codes,
                   size_t stride_bytes, uint32_t dim, const uint32_t* ids,
                   size_t n, float* out);

/// Always-scalar canonical reference implementations, independent of the
/// dispatch state. These are the oracle the differential kernel tests
/// compare every dispatched level against.
float L2SqrScalar(const float* a, const float* b, uint32_t dim);
float DotScalar(const float* a, const float* b, uint32_t dim);
float NormSqrScalar(const float* a, uint32_t dim);
uint32_t L2SqrSQ8Scalar(const uint8_t* query_code, const uint8_t* code,
                        uint32_t dim);

// ---------------------------------------------------------------- counting

/// Counts distance evaluations. One DistanceCounter is threaded through each
/// build or search call; NDC (number of distance computations) per query is
/// the paper's machine-independent efficiency measure. The count is a plain
/// uint64_t on purpose — the hot path must not pay for an atomic — so a
/// single counter must never be shared across workers; parallel build
/// stages use WorkerDistanceCounters below instead.
struct DistanceCounter {
  uint64_t count = 0;
};

/// Per-worker distance counters for the parallel construction stages
/// (docs/CONCURRENCY.md). Each ParallelForWithWorker slot owns one
/// cache-line-aligned counter (no false sharing, no data race), and the
/// total is folded into the build counter in worker-index order after the
/// parallel region joins. Because every parallel build stage evaluates a
/// thread-count-invariant *set* of distances, the folded total is exact and
/// bit-for-bit identical at any thread count — `build_stats_.distance_evals`
/// stays a deterministic quantity, not a sampling artifact.
class WorkerDistanceCounters {
 public:
  explicit WorkerDistanceCounters(uint32_t workers)
      : slots_(std::max(1u, workers)) {}

  DistanceCounter& of(uint32_t worker) { return slots_[worker].counter; }

  /// Folds every worker's count into `total` in worker-index order
  /// (0, 1, ...). No-op when `total` is null.
  void FoldInto(DistanceCounter* total) const {
    if (total == nullptr) return;
    for (const Slot& slot : slots_) total->count += slot.counter.count;
  }

 private:
  struct alignas(64) Slot {
    DistanceCounter counter;
  };
  std::vector<Slot> slots_;
};

/// Distance oracle over a dataset: bundles the data, the metric, and the
/// evaluation counter so call sites cannot forget to count.
class DistanceOracle {
 public:
  explicit DistanceOracle(const Dataset& data, DistanceCounter* counter)
      : data_(&data), counter_(counter) {}

  /// Distance between stored points a and b.
  float Between(uint32_t a, uint32_t b) {
    Count();
    return L2Sqr(data_->Row(a), data_->Row(b), data_->dim());
  }

  /// Distance between a query vector and stored point id.
  float ToQuery(const float* query, uint32_t id) {
    Count();
    return L2Sqr(query, data_->Row(id), data_->dim());
  }

  /// Batched query-vs-stored-points distances: out[i] corresponds to
  /// ids[i]. Counts n evaluations — identical accounting to n ToQuery
  /// calls — and is bit-for-bit equal to them; the batch form exists for
  /// the prefetch-friendly inner search loops.
  void ToQueryBatch(const float* query, const uint32_t* ids, size_t n,
                    float* out) {
    if (counter_ != nullptr) counter_->count += n;
    L2SqrBatch(query, data_->RowBase(), data_->row_stride(), data_->dim(),
               ids, n, out);
  }

  /// Distance between a query and an arbitrary vector (e.g., a tree
  /// centroid). Counted: centroid comparisons are real query-time work.
  float ToVector(const float* query, const float* v) {
    Count();
    return L2Sqr(query, v, data_->dim());
  }

  const Dataset& data() const { return *data_; }
  uint32_t dim() const { return data_->dim(); }
  uint32_t size() const { return data_->size(); }
  uint64_t evaluations() const { return counter_ ? counter_->count : 0; }

 private:
  void Count() {
    if (counter_ != nullptr) ++counter_->count;
  }

  const Dataset* data_;
  DistanceCounter* counter_;
};

}  // namespace weavess

#endif  // WEAVESS_CORE_DISTANCE_H_
