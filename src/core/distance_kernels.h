// Internal seam between the dispatch layer (distance.cc) and the per-ISA
// kernel implementations (distance_kernels.cc). Every level implements the
// same canonical 16-lane reduction (docs/KERNELS.md), so the table a level
// exports is bit-for-bit interchangeable with every other level's.
#ifndef WEAVESS_CORE_DISTANCE_KERNELS_H_
#define WEAVESS_CORE_DISTANCE_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace weavess {

enum class KernelLevel : uint8_t;  // full definition in core/distance.h

namespace detail {

/// Function table one dispatch level exports. `l2_batch` computes
/// out[i] = l2(query, base + ids[i] * stride, dim) with row prefetch;
/// stride ≥ dim because dataset rows are alignment-padded.
///
/// `l2_sq8` is the symmetric quantized form: squared L2 between two SQ8
/// code rows (the query encoded once per search), Σ (qcode[d] - code[d])²
/// in pure integer arithmetic — exact and associative, so every level is
/// bit-for-bit equal without the float kernels' reduction-order rules.
/// `l2_sq8_batch` mirrors `l2_batch` with a byte stride between code rows
/// and converts each integer sum to float (deterministically) for the
/// candidate pools.
struct KernelOps {
  float (*l2)(const float* a, const float* b, uint32_t dim);
  float (*dot)(const float* a, const float* b, uint32_t dim);
  float (*norm)(const float* a, uint32_t dim);
  void (*l2_batch)(const float* query, const float* base, size_t stride,
                   uint32_t dim, const uint32_t* ids, size_t n, float* out);
  uint32_t (*l2_sq8)(const uint8_t* query_code, const uint8_t* code,
                     uint32_t dim);
  void (*l2_sq8_batch)(const uint8_t* query_code, const uint8_t* codes,
                       size_t stride_bytes, uint32_t dim, const uint32_t* ids,
                       size_t n, float* out);
};

/// Table for `level`, or nullptr when the level is not compiled into this
/// binary or the running CPU lacks the instructions. kScalar never fails.
const KernelOps* OpsFor(KernelLevel level);

}  // namespace detail
}  // namespace weavess

#endif  // WEAVESS_CORE_DISTANCE_KERNELS_H_
