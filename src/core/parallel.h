// Blocked parallel-for over the shared persistent thread pool. The paper
// parallelizes the vector-heavy parts of index construction (§5.1, 32
// threads); this header provides the same capability behind a `num_threads`
// knob that defaults to 1, keeping single-threaded runs bit-for-bit
// deterministic. Unlike the original spawn-per-call implementation, work
// now runs on the process-wide condition-variable pool (core/thread_pool.h)
// and an exception thrown by any iteration is captured and rethrown on the
// caller instead of terminating the process.
#ifndef WEAVESS_CORE_PARALLEL_H_
#define WEAVESS_CORE_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>

#include "core/thread_pool.h"

namespace weavess {

/// Runs fn(i, worker) for every i in [begin, end). With num_threads <= 1
/// the loop runs inline; otherwise indices are split into contiguous
/// blocks, one per worker slot. `fn` must be safe to call concurrently for
/// distinct i. The worker index (0-based, < num_threads) lets callers keep
/// per-thread scratch (e.g., distance counters): slot t is processed by
/// exactly one thread at a time, so scratch[t] never sees concurrent use.
/// The first exception thrown from any block is rethrown after all blocks
/// finish (remaining iterations of other blocks still run).
inline void ParallelForWithWorker(
    uint32_t begin, uint32_t end, uint32_t num_threads,
    const std::function<void(uint32_t index, uint32_t worker)>& fn) {
  if (end <= begin) return;
  const uint32_t count = end - begin;
  if (num_threads <= 1 || count == 1) {
    for (uint32_t i = begin; i < end; ++i) fn(i, 0);
    return;
  }
  const uint32_t workers = std::min(num_threads, count);
  const uint32_t block = (count + workers - 1) / workers;
  SharedThreadPool().RunTasks(workers, [&](uint32_t t) {
    const uint32_t lo = begin + t * block;
    const uint32_t hi = std::min(end, lo + block);
    for (uint32_t i = lo; i < hi; ++i) fn(i, t);
  });
}

inline void ParallelFor(uint32_t begin, uint32_t end, uint32_t num_threads,
                        const std::function<void(uint32_t index)>& fn) {
  ParallelForWithWorker(begin, end, num_threads,
                        [&fn](uint32_t i, uint32_t) { fn(i); });
}

}  // namespace weavess

#endif  // WEAVESS_CORE_PARALLEL_H_
