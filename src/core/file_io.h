// Minimal byte-stream abstraction for index persistence. The graph
// serializer writes through Writer and reads through Reader so that tests
// can inject faults (short reads, failed writes, truncation) without
// touching the real filesystem; production code uses the stdio-backed
// implementations below.
#ifndef WEAVESS_CORE_FILE_IO_H_
#define WEAVESS_CORE_FILE_IO_H_

#include <cstdio>
#include <string>

#include "core/status.h"

namespace weavess {

/// Append-only byte sink. Implementations return kIOError on failure
/// (e.g., ENOSPC); partial progress is unspecified and callers must treat
/// the destination as garbage after any error.
class Writer {
 public:
  virtual ~Writer() = default;

  virtual Status Append(const void* data, size_t n) = 0;

  /// Pushes buffered bytes down to the underlying resource without
  /// releasing it — the write-ahead log's commit boundary. Default no-op
  /// for sinks that do not buffer.
  virtual Status Flush() { return Status::OK(); }

  /// Flushes and releases the underlying resource. Must be called to
  /// observe deferred write errors; destructors close silently.
  virtual Status Close() { return Status::OK(); }
};

/// Sequential byte source. Read returns the number of bytes produced,
/// which may be fewer than requested (short read) — 0 means end of stream.
/// Callers must loop; fault-injection readers exercise exactly this.
class Reader {
 public:
  virtual ~Reader() = default;

  virtual StatusOr<size_t> Read(void* buffer, size_t n) = 0;
};

/// stdio-backed Writer.
class StdioWriter : public Writer {
 public:
  StdioWriter() = default;
  ~StdioWriter() override;
  StdioWriter(const StdioWriter&) = delete;
  StdioWriter& operator=(const StdioWriter&) = delete;

  /// Truncates by default; `append` opens at end-of-file instead (the
  /// write-ahead log reopens its surviving prefix this way after recovery).
  Status Open(const std::string& path, bool append = false);
  Status Append(const void* data, size_t n) override;
  Status Flush() override;
  Status Close() override;

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// stdio-backed Reader.
class StdioReader : public Reader {
 public:
  StdioReader() = default;
  ~StdioReader() override;
  StdioReader(const StdioReader&) = delete;
  StdioReader& operator=(const StdioReader&) = delete;

  Status Open(const std::string& path);
  StatusOr<size_t> Read(void* buffer, size_t n) override;

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Drains `reader` to EOF into `*out` (appending).
Status ReadAll(Reader& reader, std::string* out);

/// Whole-file convenience wrappers over the stdio classes.
Status ReadFileToString(const std::string& path, std::string* out);
Status WriteStringToFile(const std::string& data, const std::string& path);

}  // namespace weavess

#endif  // WEAVESS_CORE_FILE_IO_H_
