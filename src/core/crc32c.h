// CRC32C (Castagnoli polynomial, the checksum of iSCSI/ext4/RocksDB):
// software table-driven implementation used to protect every section of the
// on-disk graph index format (docs/PERSISTENCE.md). No hardware intrinsics
// so the format is verifiable on any build target.
#ifndef WEAVESS_CORE_CRC32C_H_
#define WEAVESS_CORE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace weavess {

/// Extends `crc` (the running checksum of prior bytes, 0 to start) with
/// `n` more bytes. Final values are already post-conditioned; chain calls
/// by passing the previous return value back in.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// One-shot CRC32C of a buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace weavess

#endif  // WEAVESS_CORE_CRC32C_H_
