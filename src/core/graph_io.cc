#include "core/graph_io.h"

#include <cstring>
#include <tuple>

#include "core/crc32c.h"

namespace weavess {

namespace {

// Explicit little-endian encoding: the format is byte-defined, not
// struct-defined, so it round-trips across architectures.
void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xFF);
  bytes[1] = static_cast<char>((v >> 8) & 0xFF);
  bytes[2] = static_cast<char>((v >> 16) & 0xFF);
  bytes[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(bytes, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(std::string_view bytes, size_t offset) {
  const auto* p = reinterpret_cast<const uint8_t*>(bytes.data() + offset);
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(std::string_view bytes, size_t offset) {
  return static_cast<uint64_t>(GetU32(bytes, offset)) |
         static_cast<uint64_t>(GetU32(bytes, offset + 4)) << 32;
}

std::string Hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

Status CorruptionAt(uint64_t byte_offset, const std::string& what) {
  return Status::Corruption(what + " at byte offset " +
                            std::to_string(byte_offset));
}

// Section sizes derived from the (validated) header fields.
struct Layout {
  uint64_t offsets_begin;  // payload start of the offsets section
  uint64_t offsets_len;    // (n + 1) * 8
  uint64_t payload_begin;
  uint64_t payload_len;  // num_edges * 4
  uint64_t metadata_begin;
  uint64_t metadata_len;
  uint64_t total;  // expected file size

  static Layout For(uint64_t n, uint64_t e, uint64_t m) {
    Layout l;
    l.offsets_begin = kGraphHeaderBytes;
    l.offsets_len = (n + 1) * 8;
    l.payload_begin = l.offsets_begin + l.offsets_len + 4;
    l.payload_len = e * 4;
    l.metadata_begin = l.payload_begin + l.payload_len + 4;
    l.metadata_len = m;
    l.total = l.metadata_begin + l.metadata_len + 4;
    return l;
  }
};

// Parses and validates the fixed 32-byte prologue. On success fills the
// counts; reports the header section into `report` when non-null.
Status CheckHeader(std::string_view bytes, uint32_t* version,
                   uint32_t* num_vertices, uint64_t* num_edges,
                   uint32_t* metadata_len,
                   std::vector<GraphSectionReport>* report) {
  if (bytes.size() < kGraphHeaderBytes) {
    return Status::Corruption(
        "file too small: " + std::to_string(bytes.size()) +
        " bytes, a graph file needs at least " +
        std::to_string(kGraphHeaderBytes));
  }
  if (std::memcmp(bytes.data(), kGraphMagic, sizeof(kGraphMagic)) != 0) {
    return CorruptionAt(0,
                        "bad magic (not a weavess graph file, or a "
                        "pre-versioning legacy file)");
  }
  const uint32_t stored_crc = GetU32(bytes, kGraphHeaderBytes - 4);
  const uint32_t computed_crc =
      Crc32c(bytes.data(), kGraphHeaderBytes - 4);
  if (report != nullptr) {
    report->push_back({"header", 0, kGraphHeaderBytes - 4, stored_crc,
                       computed_crc, stored_crc == computed_crc});
  }
  if (stored_crc != computed_crc) {
    return CorruptionAt(kGraphHeaderBytes - 4,
                        "header CRC mismatch: stored " + Hex(stored_crc) +
                            ", computed " + Hex(computed_crc));
  }
  *version = GetU32(bytes, 8);
  if (*version != kGraphFormatVersion) {
    return Status::NotSupported(
        "graph format version " + std::to_string(*version) +
        "; this build reads version " + std::to_string(kGraphFormatVersion));
  }
  *num_vertices = GetU32(bytes, 12);
  *num_edges = GetU64(bytes, 16);
  *metadata_len = GetU32(bytes, 24);
  if (*metadata_len > kMaxGraphMetadataBytes) {
    return CorruptionAt(24, "metadata length " +
                                std::to_string(*metadata_len) +
                                " exceeds the " +
                                std::to_string(kMaxGraphMetadataBytes) +
                                "-byte cap");
  }
  return Status::OK();
}

// Verifies one trailing-CRC section; appends to `report` when non-null.
Status CheckSection(std::string_view bytes, const char* name, uint64_t begin,
                    uint64_t len,
                    std::vector<GraphSectionReport>* report) {
  const uint32_t stored_crc = GetU32(bytes, begin + len);
  const uint32_t computed_crc = Crc32c(bytes.data() + begin, len);
  if (report != nullptr) {
    report->push_back(
        {name, begin, len, stored_crc, computed_crc,
         stored_crc == computed_crc});
  }
  if (stored_crc != computed_crc) {
    return CorruptionAt(begin + len,
                        std::string(name) + " section CRC mismatch: stored " +
                            Hex(stored_crc) + ", computed " +
                            Hex(computed_crc));
  }
  return Status::OK();
}

// Shared by DeserializeGraph and VerifyGraphBytes: structural validation of
// the whole byte buffer. When `graph_out` is non-null, the adjacency lists
// are materialized into it.
Status ParseGraph(std::string_view bytes, Graph* graph_out,
                  std::string* metadata, uint32_t* version_out,
                  uint32_t* num_vertices_out, uint64_t* num_edges_out,
                  std::vector<GraphSectionReport>* report) {
  uint32_t version = 0;
  uint32_t n = 0;
  uint64_t e = 0;
  uint32_t metadata_len = 0;
  WEAVESS_RETURN_IF_ERROR(
      CheckHeader(bytes, &version, &n, &e, &metadata_len, report));
  if (version_out != nullptr) *version_out = version;
  if (num_vertices_out != nullptr) *num_vertices_out = n;
  if (num_edges_out != nullptr) *num_edges_out = e;

  // Overflow guard: the payload alone must fit in the file before any
  // e * 4 arithmetic happens (a hostile u64 edge count must not wrap the
  // expected-size computation into a plausible value).
  if (e > bytes.size() / 4) {
    return CorruptionAt(16, "edge count " + std::to_string(e) +
                                " cannot fit in a " +
                                std::to_string(bytes.size()) + "-byte file");
  }
  const Layout layout = Layout::For(n, e, metadata_len);
  if (layout.total != bytes.size()) {
    return Status::Corruption(
        "file size mismatch: header promises " +
        std::to_string(layout.total) + " bytes (" + std::to_string(n) +
        " vertices, " + std::to_string(e) + " edges, " +
        std::to_string(metadata_len) + " metadata bytes), file has " +
        std::to_string(bytes.size()));
  }

  // In verify mode (report != nullptr) keep checking later sections after a
  // failure so the CLI can print a complete per-section diagnosis; the
  // first error is still the returned status.
  Status section_status = CheckSection(bytes, "offsets", layout.offsets_begin,
                                       layout.offsets_len, report);
  if (!section_status.ok() && report == nullptr) return section_status;
  for (const auto& [name, begin, len] :
       {std::tuple("payload", layout.payload_begin, layout.payload_len),
        std::tuple("metadata", layout.metadata_begin, layout.metadata_len)}) {
    const Status s = CheckSection(bytes, name, begin, len, report);
    if (section_status.ok()) section_status = s;
    if (!section_status.ok() && report == nullptr) return section_status;
  }
  WEAVESS_RETURN_IF_ERROR(section_status);

  // Offset table: offsets[0] == 0, non-decreasing, offsets[n] == num_edges.
  uint64_t prev = GetU64(bytes, layout.offsets_begin);
  if (prev != 0) {
    return CorruptionAt(layout.offsets_begin,
                        "adjacency offsets must start at 0, found " +
                            std::to_string(prev));
  }
  for (uint64_t v = 1; v <= n; ++v) {
    const uint64_t pos = layout.offsets_begin + v * 8;
    const uint64_t cur = GetU64(bytes, pos);
    if (cur < prev) {
      return CorruptionAt(pos, "adjacency offsets decrease (" +
                                   std::to_string(cur) + " after " +
                                   std::to_string(prev) + ")");
    }
    prev = cur;
  }
  if (prev != e) {
    return CorruptionAt(layout.offsets_begin + static_cast<uint64_t>(n) * 8,
                        "adjacency offsets end at " + std::to_string(prev) +
                            " but the header promises " + std::to_string(e) +
                            " edges");
  }

  // Payload: every neighbor id must be a valid vertex.
  for (uint64_t i = 0; i < e; ++i) {
    const uint64_t pos = layout.payload_begin + i * 4;
    const uint32_t id = GetU32(bytes, pos);
    if (id >= n) {
      return CorruptionAt(pos, "neighbor id " + std::to_string(id) +
                                   " out of range for " + std::to_string(n) +
                                   " vertices");
    }
  }

  if (metadata != nullptr) {
    metadata->assign(bytes.data() + layout.metadata_begin,
                     layout.metadata_len);
  }

  if (graph_out != nullptr) {
    Graph graph(n);
    for (uint32_t v = 0; v < n; ++v) {
      const uint64_t begin = GetU64(bytes, layout.offsets_begin + v * 8);
      const uint64_t end = GetU64(bytes, layout.offsets_begin + (v + 1) * 8);
      auto& list = graph.MutableNeighbors(v);
      list.reserve(end - begin);
      for (uint64_t i = begin; i < end; ++i) {
        list.push_back(GetU32(bytes, layout.payload_begin + i * 4));
      }
    }
    *graph_out = std::move(graph);
  }
  return Status::OK();
}

}  // namespace

std::string SerializeGraph(const Graph& graph, std::string_view metadata) {
  WEAVESS_CHECK(metadata.size() <= kMaxGraphMetadataBytes);
  const uint32_t n = graph.size();
  const uint64_t e = graph.NumEdges();
  const Layout layout = Layout::For(n, e, metadata.size());

  std::string out;
  out.reserve(layout.total);

  // Header.
  out.append(kGraphMagic, sizeof(kGraphMagic));
  PutU32(&out, kGraphFormatVersion);
  PutU32(&out, n);
  PutU64(&out, e);
  PutU32(&out, static_cast<uint32_t>(metadata.size()));
  PutU32(&out, Crc32c(out.data(), out.size()));

  // Offsets.
  const size_t offsets_begin = out.size();
  uint64_t running = 0;
  PutU64(&out, running);
  for (uint32_t v = 0; v < n; ++v) {
    running += graph.Neighbors(v).size();
    PutU64(&out, running);
  }
  PutU32(&out, Crc32c(out.data() + offsets_begin, out.size() - offsets_begin));

  // Payload.
  const size_t payload_begin = out.size();
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t id : graph.Neighbors(v)) PutU32(&out, id);
  }
  PutU32(&out, Crc32c(out.data() + payload_begin, out.size() - payload_begin));

  // Metadata.
  out.append(metadata.data(), metadata.size());
  PutU32(&out, Crc32c(metadata.data(), metadata.size()));

  WEAVESS_CHECK(out.size() == layout.total);
  return out;
}

StatusOr<Graph> DeserializeGraph(std::string_view bytes,
                                 std::string* metadata) {
  Graph graph;
  WEAVESS_RETURN_IF_ERROR(ParseGraph(bytes, &graph, metadata, nullptr,
                                     nullptr, nullptr, nullptr));
  return graph;
}

Status SaveGraphToWriter(const Graph& graph, std::string_view metadata,
                         Writer& writer) {
  const std::string bytes = SerializeGraph(graph, metadata);
  WEAVESS_RETURN_IF_ERROR(writer.Append(bytes.data(), bytes.size()));
  return writer.Close();
}

StatusOr<Graph> LoadGraphFromReader(Reader& reader, std::string* metadata) {
  std::string bytes;
  WEAVESS_RETURN_IF_ERROR(ReadAll(reader, &bytes));
  return DeserializeGraph(bytes, metadata);
}

Status SaveGraph(const Graph& graph, const std::string& path,
                 std::string_view metadata) {
  StdioWriter writer;
  WEAVESS_RETURN_IF_ERROR(writer.Open(path));
  return SaveGraphToWriter(graph, metadata, writer);
}

StatusOr<Graph> LoadGraph(const std::string& path, std::string* metadata) {
  std::string bytes;
  WEAVESS_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  return DeserializeGraph(bytes, metadata);
}

GraphFileReport VerifyGraphBytes(std::string_view bytes) {
  GraphFileReport report;
  report.status = ParseGraph(bytes, nullptr, &report.metadata,
                             &report.version, &report.num_vertices,
                             &report.num_edges, &report.sections);
  return report;
}

GraphFileReport VerifyGraphFile(const std::string& path) {
  std::string bytes;
  const Status read = ReadFileToString(path, &bytes);
  if (!read.ok()) {
    GraphFileReport report;
    report.status = read;
    return report;
  }
  return VerifyGraphBytes(bytes);
}

}  // namespace weavess
