// Lightweight runtime invariant checks. The library does not use exceptions;
// violated invariants abort with a diagnostic, matching the style of
// assertion macros in RocksDB/Arrow-style C++ database code.
#ifndef WEAVESS_CORE_CHECK_H_
#define WEAVESS_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace weavess::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "WEAVESS_CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::abort();
}

}  // namespace weavess::internal

/// Aborts the process with a diagnostic if `cond` is false. Enabled in all
/// build types: index-construction invariants are cheap relative to the
/// distance computations they guard, and silent corruption of a graph index
/// is far more expensive to debug than the check.
#define WEAVESS_CHECK(cond)                                         \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::weavess::internal::CheckFailed(__FILE__, __LINE__, #cond);  \
    }                                                               \
  } while (0)

/// Debug-only check for per-element hot-path assertions.
#ifndef NDEBUG
#define WEAVESS_DCHECK(cond) WEAVESS_CHECK(cond)
#else
#define WEAVESS_DCHECK(cond) \
  do {                       \
  } while (0)
#endif

#endif  // WEAVESS_CORE_CHECK_H_
