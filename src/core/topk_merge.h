// Shared top-k selection and k-way merge. Two collaborating pieces:
//
//  * TopKAccumulator — a bounded max-heap that keeps the k smallest
//    (distance, id) pairs seen so far. This is the single implementation
//    behind every exact scan in the library (the serving brute-force
//    fallback, degraded shard scans).
//
//  * MergeTopK — merges per-source sorted candidate lists into one global
//    top-k with duplicate-id suppression: the gather step of the sharded
//    scatter-gather search (src/shard/sharded_index.h). Disjoint partitions
//    cannot produce duplicates, but the merge does not rely on that — an
//    overlapping source set (replicated shards, multi-probe) merges
//    correctly too.
//
// Ordering everywhere is lexicographic (distance, id): distance ties break
// by ascending id, so results are deterministic regardless of source order.
#ifndef WEAVESS_CORE_TOPK_MERGE_H_
#define WEAVESS_CORE_TOPK_MERGE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

namespace weavess {

/// A candidate with its (squared) distance to the query.
struct ScoredId {
  float distance = 0.0f;
  uint32_t id = 0;

  ScoredId() = default;
  ScoredId(float distance_in, uint32_t id_in)
      : distance(distance_in), id(id_in) {}

  friend bool operator<(const ScoredId& a, const ScoredId& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.id < b.id);
  }
  friend bool operator==(const ScoredId& a, const ScoredId& b) {
    return a.distance == b.distance && a.id == b.id;
  }
};

/// Keeps the k smallest (distance, id) pairs pushed into it. `k == 0` keeps
/// nothing. Push is O(log k); extraction sorts ascending. No duplicate
/// detection — callers feeding one source (a linear scan) never produce
/// duplicates; use MergeTopK when sources may overlap.
class TopKAccumulator {
 public:
  explicit TopKAccumulator(uint32_t k) : k_(k) { heap_.reserve(k + 1); }

  void Push(float distance, uint32_t id) {
    if (k_ == 0) return;
    const ScoredId entry(distance, id);
    if (heap_.size() < k_) {
      heap_.push_back(entry);
      std::push_heap(heap_.begin(), heap_.end());
    } else if (entry < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = entry;
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  size_t size() const { return heap_.size(); }

  /// Worst kept distance, +inf while fewer than k entries are held. Lets a
  /// scan skip the Push for obviously hopeless candidates.
  float WorstDistance() const {
    return heap_.size() < k_ ? std::numeric_limits<float>::infinity()
                             : heap_.front().distance;
  }

  /// Extracts the kept entries in ascending (distance, id) order. The
  /// accumulator is empty afterwards.
  std::vector<ScoredId> TakeSorted() {
    std::sort_heap(heap_.begin(), heap_.end());
    return std::move(heap_);
  }

  /// Convenience: TakeSorted projected onto ids.
  std::vector<uint32_t> TakeSortedIds() {
    const std::vector<ScoredId> sorted = TakeSorted();
    std::vector<uint32_t> ids;
    ids.reserve(sorted.size());
    for (const ScoredId& entry : sorted) ids.push_back(entry.id);
    return ids;
  }

 private:
  size_t k_;
  std::vector<ScoredId> heap_;  // max-heap under operator<
};

/// K-way merge of per-source candidate lists (each sorted ascending by
/// (distance, id)) into the global top-k. Duplicate ids are suppressed:
/// only the occurrence with the smallest (distance, id) survives, so the
/// result is sorted and dup-free with size <= k. Unsorted input still
/// yields a correct dup-free top-k (the merge heap orders entries), it just
/// loses the early-exit.
namespace topk_internal {

struct MergeHead {
  ScoredId entry;
  uint32_t list = 0;
  uint32_t pos = 0;
  // Min-heap via reversed comparison; ties broken by list index for a
  // fully deterministic pop order.
  friend bool operator<(const MergeHead& a, const MergeHead& b) {
    if (b.entry < a.entry) return true;
    if (a.entry < b.entry) return false;
    return a.list > b.list;
  }
};

}  // namespace topk_internal

inline std::vector<ScoredId> MergeTopK(
    const std::vector<std::vector<ScoredId>>& lists, uint32_t k) {
  using topk_internal::MergeHead;
  std::priority_queue<MergeHead> heads;
  for (uint32_t l = 0; l < lists.size(); ++l) {
    if (!lists[l].empty()) heads.push({lists[l][0], l, 0});
  }
  std::vector<ScoredId> merged;
  merged.reserve(k);
  std::unordered_set<uint32_t> seen;
  seen.reserve(k);
  while (merged.size() < k && !heads.empty()) {
    const MergeHead head = heads.top();
    heads.pop();
    if (seen.insert(head.entry.id).second) merged.push_back(head.entry);
    const uint32_t next = head.pos + 1;
    if (next < lists[head.list].size()) {
      heads.push({lists[head.list][next], head.list, next});
    }
  }
  return merged;
}

}  // namespace weavess

#endif  // WEAVESS_CORE_TOPK_MERGE_H_
