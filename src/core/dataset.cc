#include "core/dataset.h"

#include <cmath>

namespace weavess {

Dataset::Dataset(uint32_t num, uint32_t dim, std::vector<float> data)
    : num_(num), dim_(dim), data_(std::move(data)) {
  WEAVESS_CHECK(data_.size() == static_cast<size_t>(num) * dim);
}

Dataset Dataset::Zeros(uint32_t num, uint32_t dim) {
  return Dataset(num, dim,
                 std::vector<float>(static_cast<size_t>(num) * dim, 0.0f));
}

Dataset Dataset::Subset(const std::vector<uint32_t>& ids) const {
  Dataset out = Zeros(static_cast<uint32_t>(ids.size()), dim_);
  for (uint32_t i = 0; i < ids.size(); ++i) {
    std::memcpy(out.MutableRow(i), Row(ids[i]), sizeof(float) * dim_);
  }
  return out;
}

void Dataset::NormalizeRows() {
  for (uint32_t i = 0; i < num_; ++i) {
    float* row = MutableRow(i);
    double norm_sqr = 0.0;
    for (uint32_t d = 0; d < dim_; ++d) {
      norm_sqr += static_cast<double>(row[d]) * row[d];
    }
    if (norm_sqr <= 0.0) continue;
    const auto inv = static_cast<float>(1.0 / std::sqrt(norm_sqr));
    for (uint32_t d = 0; d < dim_; ++d) row[d] *= inv;
  }
}

std::vector<float> Dataset::Mean() const {
  std::vector<double> acc(dim_, 0.0);
  for (uint32_t i = 0; i < num_; ++i) {
    const float* row = Row(i);
    for (uint32_t d = 0; d < dim_; ++d) acc[d] += row[d];
  }
  std::vector<float> mean(dim_, 0.0f);
  if (num_ > 0) {
    for (uint32_t d = 0; d < dim_; ++d) {
      mean[d] = static_cast<float>(acc[d] / num_);
    }
  }
  return mean;
}

}  // namespace weavess
