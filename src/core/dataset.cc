#include "core/dataset.h"

#include <cmath>

namespace weavess {

namespace {

uint32_t PaddedStride(uint32_t dim) {
  const uint32_t q = Dataset::kStrideQuantum;
  return (dim + q - 1) / q * q;
}

}  // namespace

Dataset::Dataset(uint32_t num, uint32_t dim, const std::vector<float>& data)
    : Dataset(num, dim, data.data()) {
  WEAVESS_CHECK(data.size() == static_cast<size_t>(num) * dim);
}

Dataset::Dataset(uint32_t num, uint32_t dim, const float* src)
    : num_(num),
      dim_(dim),
      stride_(PaddedStride(dim)),
      data_(static_cast<size_t>(num) * PaddedStride(dim), 0.0f) {
  WEAVESS_CHECK(num == 0 || src != nullptr);
  // memcpy per row: src carries no alignment guarantee (fvecs payload
  // offsets are 4-byte at best; callers may hand in byte-shifted buffers).
  for (uint32_t i = 0; i < num; ++i) {
    std::memcpy(data_.data() + static_cast<size_t>(i) * stride_,
                src + static_cast<size_t>(i) * dim, sizeof(float) * dim);
  }
}

Dataset Dataset::Zeros(uint32_t num, uint32_t dim) {
  Dataset out;
  out.num_ = num;
  out.dim_ = dim;
  out.stride_ = PaddedStride(dim);
  out.data_.assign(static_cast<size_t>(num) * out.stride_, 0.0f);
  return out;
}

Dataset Dataset::Subset(const std::vector<uint32_t>& ids) const {
  Dataset out = Zeros(static_cast<uint32_t>(ids.size()), dim_);
  for (uint32_t i = 0; i < ids.size(); ++i) {
    std::memcpy(out.MutableRow(i), Row(ids[i]), sizeof(float) * dim_);
  }
  return out;
}

void Dataset::NormalizeRows() {
  for (uint32_t i = 0; i < num_; ++i) {
    float* row = MutableRow(i);
    double norm_sqr = 0.0;
    for (uint32_t d = 0; d < dim_; ++d) {
      norm_sqr += static_cast<double>(row[d]) * row[d];
    }
    if (norm_sqr <= 0.0) continue;
    const auto inv = static_cast<float>(1.0 / std::sqrt(norm_sqr));
    for (uint32_t d = 0; d < dim_; ++d) row[d] *= inv;
  }
}

std::vector<float> Dataset::Mean() const {
  std::vector<double> acc(dim_, 0.0);
  for (uint32_t i = 0; i < num_; ++i) {
    const float* row = Row(i);
    for (uint32_t d = 0; d < dim_; ++d) acc[d] += row[d];
  }
  std::vector<float> mean(dim_, 0.0f);
  if (num_ > 0) {
    for (uint32_t d = 0; d < dim_; ++d) {
      mean[d] = static_cast<float>(acc[d] / num_);
    }
  }
  return mean;
}

}  // namespace weavess
