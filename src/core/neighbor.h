// Neighbor records and the fixed-capacity sorted candidate pool that drives
// best-first search (Definition 4.7 / Algorithm 1 in the paper).
#ifndef WEAVESS_CORE_NEIGHBOR_H_
#define WEAVESS_CORE_NEIGHBOR_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/check.h"

namespace weavess {

/// A candidate vertex with its (squared) distance to the reference point.
struct Neighbor {
  uint32_t id = 0;
  float distance = 0.0f;
  /// Routing uses `checked` to mark vertices whose adjacency list has been
  /// expanded; NN-Descent reuses it as the "new neighbor" flag.
  bool checked = false;

  Neighbor() = default;
  Neighbor(uint32_t id_in, float distance_in, bool checked_in = false)
      : id(id_in), distance(distance_in), checked(checked_in) {}
};

inline bool operator<(const Neighbor& a, const Neighbor& b) {
  return a.distance < b.distance || (a.distance == b.distance && a.id < b.id);
}

inline bool operator>(const Neighbor& a, const Neighbor& b) { return b < a; }

/// Fixed-capacity pool of candidates kept sorted by ascending distance: the
/// set C of Definition 4.7 with |C| <= c. Insertion is O(capacity) via
/// shifted insert, which beats heap-based pools at the small capacities
/// (tens to a few thousand) used for ANNS candidate sets.
class CandidatePool {
 public:
  static constexpr size_t kNpos = static_cast<size_t>(-1);

  explicit CandidatePool(size_t capacity) : capacity_(capacity) {
    WEAVESS_CHECK(capacity > 0);
    pool_.reserve(capacity + 1);
  }

  /// Empties the pool and re-targets it at a new capacity, reusing the
  /// backing storage. Lets per-worker scratch carry one pool across many
  /// queries instead of allocating per search.
  void Reset(size_t capacity) {
    WEAVESS_CHECK(capacity > 0);
    capacity_ = capacity;
    scan_hint_ = 0;
    pool_.clear();
    pool_.reserve(capacity + 1);
  }

  size_t size() const { return pool_.size(); }
  size_t capacity() const { return capacity_; }
  bool full() const { return pool_.size() == capacity_; }
  const Neighbor& operator[](size_t i) const { return pool_[i]; }
  const std::vector<Neighbor>& entries() const { return pool_; }

  /// Distance of the current worst pool entry, or +inf while not full.
  float WorstDistance() const {
    return full() ? pool_.back().distance
                  : std::numeric_limits<float>::infinity();
  }

  /// Inserts candidate if it beats the worst entry (or the pool is not
  /// full) and is not already present. Returns the insertion position or
  /// kNpos if rejected. Duplicates are detected by id among equal-distance
  /// neighbors and across the pool.
  size_t Insert(Neighbor candidate) {
    if (full() && candidate.distance >= pool_.back().distance) return kNpos;
    // Binary search for insertion point.
    auto it = std::lower_bound(
        pool_.begin(), pool_.end(), candidate,
        [](const Neighbor& a, const Neighbor& b) {
          return a.distance < b.distance;
        });
    // Reject duplicates: scan the run of equal distances around `it`.
    for (auto probe = it;
         probe != pool_.end() && probe->distance == candidate.distance;
         ++probe) {
      if (probe->id == candidate.id) return kNpos;
    }
    if (it != pool_.begin()) {
      for (auto probe = std::prev(it);
           probe->distance == candidate.distance;
           --probe) {
        if (probe->id == candidate.id) return kNpos;
        if (probe == pool_.begin()) break;
      }
    }
    size_t pos = static_cast<size_t>(it - pool_.begin());
    pool_.insert(it, candidate);
    if (pool_.size() > capacity_) pool_.pop_back();
    if (pos >= pool_.size()) return kNpos;
    if (pos < scan_hint_) scan_hint_ = pos;
    return pos;
  }

  /// Index of the closest unchecked candidate, or kNpos when converged.
  /// Amortized O(1) via a monotone scan cursor that Insert rewinds.
  size_t NextUnchecked() {
    for (size_t i = scan_hint_; i < pool_.size(); ++i) {
      if (!pool_[i].checked) {
        scan_hint_ = i;
        return i;
      }
    }
    scan_hint_ = pool_.size();
    return kNpos;
  }

  void MarkChecked(size_t i) {
    WEAVESS_DCHECK(i < pool_.size());
    pool_[i].checked = true;
  }

  /// Copies the closest k ids out of the pool.
  std::vector<uint32_t> TopIds(size_t k) const {
    std::vector<uint32_t> ids;
    ids.reserve(std::min(k, pool_.size()));
    for (size_t i = 0; i < pool_.size() && i < k; ++i) {
      ids.push_back(pool_[i].id);
    }
    return ids;
  }

 private:
  size_t capacity_;
  size_t scan_hint_ = 0;
  std::vector<Neighbor> pool_;
};

}  // namespace weavess

#endif  // WEAVESS_CORE_NEIGHBOR_H_
