// Persistent worker pool behind a condition-variable task queue. Replaces
// the spawn-per-call threading of the original ParallelFor: workers are
// created once and parked on the queue, so a query engine serving thousands
// of small batches pays no thread-creation cost per call.
//
// Execution model: RunTasks(n, body) runs body(0) .. body(n-1) exactly once
// each, claiming indices dynamically. The *calling* thread participates in
// the work, which (a) makes a zero-worker pool a valid sequential executor
// and (b) makes nested RunTasks calls deadlock-free — a caller always
// drains its own batch even when every pool worker is busy elsewhere.
// Tasks must be independent; any two may run concurrently.
//
// Exception safety: the first exception thrown by any task is captured and
// rethrown on the calling thread after every claimed task has finished.
// Remaining tasks still run (in-flight workers cannot be cancelled).
#ifndef WEAVESS_CORE_THREAD_POOL_H_
#define WEAVESS_CORE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace weavess {

class ThreadPool {
 public:
  /// Spawns `num_workers` parked threads (0 is valid: RunTasks then runs
  /// everything on the caller).
  explicit ThreadPool(uint32_t num_workers);

  /// Joins all workers. Outstanding RunTasks calls must have returned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_workers() const {
    return static_cast<uint32_t>(threads_.size());
  }

  /// Runs body(i) for every i in [0, num_tasks) across the pool workers
  /// and the calling thread; blocks until all tasks finished. Safe to call
  /// from multiple threads concurrently (batches share the worker set).
  /// Rethrows the first task exception after the batch completes.
  void RunTasks(uint32_t num_tasks, const std::function<void(uint32_t)>& body);

 private:
  struct Batch {
    const std::function<void(uint32_t)>* body = nullptr;
    uint32_t num_tasks = 0;
    std::atomic<uint32_t> next_task{0};
    uint32_t unfinished = 0;          // guarded by the pool mutex
    std::exception_ptr first_error;   // guarded by the pool mutex
    std::condition_variable done_cv;  // signalled when unfinished hits 0

    bool Exhausted() const {
      return next_task.load(std::memory_order_relaxed) >= num_tasks;
    }
  };

  void WorkerLoop();
  // Claims and runs tasks from `batch` until none remain unclaimed.
  void DrainBatch(Batch& batch);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Batch>> pending_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Process-wide pool used by the ParallelFor helpers (core/parallel.h).
/// Sized so that construction-time parallelism is exercised even on small
/// machines: max(4, hardware_concurrency) - 1 workers (the ParallelFor
/// caller is the remaining execution stream). Created on first use.
ThreadPool& SharedThreadPool();

}  // namespace weavess

#endif  // WEAVESS_CORE_THREAD_POOL_H_
