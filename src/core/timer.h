// Wall-clock stopwatch for construction-time and QPS measurements.
#ifndef WEAVESS_CORE_TIMER_H_
#define WEAVESS_CORE_TIMER_H_

#include <chrono>

namespace weavess {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace weavess

#endif  // WEAVESS_CORE_TIMER_H_
