#include "core/flat_graph.h"

#include <algorithm>

namespace weavess {

CsrGraph::CsrGraph(const Graph& graph) {
  const uint32_t n = graph.size();
  offsets_.resize(n + 1);
  offsets_[0] = 0;
  for (uint32_t v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + graph.Neighbors(v).size();
  }
  ids_.reserve(offsets_[n]);
  for (uint32_t v = 0; v < n; ++v) {
    const auto& list = graph.Neighbors(v);
    ids_.insert(ids_.end(), list.begin(), list.end());
  }
}

AlignedGraph::AlignedGraph(const Graph& graph) : num_vertices_(graph.size()) {
  for (uint32_t v = 0; v < num_vertices_; ++v) {
    stride_ = std::max(
        stride_, static_cast<uint32_t>(graph.Neighbors(v).size()));
  }
  stride_ = std::max(stride_, 1u);
  slots_.assign(static_cast<size_t>(num_vertices_) * stride_, kInvalid);
  for (uint32_t v = 0; v < num_vertices_; ++v) {
    uint32_t* row = slots_.data() + static_cast<size_t>(v) * stride_;
    const auto& list = graph.Neighbors(v);
    std::copy(list.begin(), list.end(), row);
  }
}

}  // namespace weavess
