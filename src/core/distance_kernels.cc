// Vectorized distance kernels, one implementation per dispatch level, all
// computing the identical canonical reduction (docs/KERNELS.md):
//
//   body = dim rounded down to a multiple of 16
//   lane[j] += op(a[i+j], b[i+j])          for i = 0,16,32,..; j = 0..15
//   r8[j] = lane[j] + lane[j+8]            j = 0..7
//   r4[j] = r8[j]   + r8[j+4]              j = 0..3
//   r2[j] = r4[j]   + r4[j+2]              j = 0..1
//   sum   = r2[0]   + r2[1]
//   sum  += op(a[i], b[i]) sequentially    for the dim % 16 tail
//
// Each lane operation is a plain IEEE sub/mul/add (never an FMA — this
// translation unit is compiled with -ffp-contract=off), so the scalar,
// AVX2, AVX-512, and NEON forms round identically at every step and return
// bit-for-bit equal floats. tests/kernel_test.cc enforces this over an
// exhaustive dim × alignment × dispatch matrix.
//
// AVX2 keeps lanes 0..7 and 8..15 in two ymm accumulators; AVX-512 keeps
// all 16 in one zmm (its first reduction step — add the high 256 bits to
// the low 256 — is exactly r8[j] = lane[j] + lane[j+8]); NEON keeps four
// q registers. The tail always runs scalar: masked tail loads would fold
// tail elements into lanes and change the summation order.
//
// The SQ8 kernels are the exception to all of the above: they compute the
// symmetric code-space distance Σ (qcode[d] - code[d])² in pure integer
// arithmetic, which is exact and associative — every width and summation
// order yields the identical uint32, so they need no canonical reduction.
#include "core/distance_kernels.h"

#include "core/distance.h"
#include "core/prefetch.h"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define WEAVESS_KERNELS_X86 1
#include <immintrin.h>
#endif

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define WEAVESS_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace weavess {
namespace detail {
namespace {

// Shared batch skeleton: prefetch a few rows ahead, then evaluate with the
// level's single-pair kernel, so batch == per-pair bit-for-bit by
// construction. kLookahead rows ≈ the memory-level parallelism a search
// loop can realistically keep in flight between pool insertions.
template <float (*kL2)(const float*, const float*, uint32_t)>
void L2SqrBatchWith(const float* query, const float* base, size_t stride,
                    uint32_t dim, const uint32_t* ids, size_t n, float* out) {
  constexpr size_t kLookahead = 4;
  const size_t row_bytes = dim * sizeof(float);
  const size_t warm = n < kLookahead ? n : kLookahead;
  for (size_t i = 0; i < warm; ++i) {
    PrefetchRegion(base + ids[i] * stride, row_bytes);
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + kLookahead < n) {
      PrefetchRegion(base + ids[i + kLookahead] * stride, row_bytes);
    }
    out[i] = kL2(query, base + ids[i] * stride, dim);
  }
}

// SQ8 batch skeleton, same shape as L2SqrBatchWith but striding over byte
// rows. Code rows are 4× denser than float rows, so the prefetch window
// covers dim bytes, not dim floats. The integer sum converts to float here
// (round-to-nearest, identical on every ISA) so pools consume one type.
template <uint32_t (*kSq8)(const uint8_t*, const uint8_t*, uint32_t)>
void L2SqrSQ8BatchWith(const uint8_t* query_code, const uint8_t* codes,
                       size_t stride_bytes, uint32_t dim, const uint32_t* ids,
                       size_t n, float* out) {
  constexpr size_t kLookahead = 4;
  const size_t warm = n < kLookahead ? n : kLookahead;
  for (size_t i = 0; i < warm; ++i) {
    PrefetchRegion(codes + ids[i] * stride_bytes, dim);
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + kLookahead < n) {
      PrefetchRegion(codes + ids[i + kLookahead] * stride_bytes, dim);
    }
    out[i] = static_cast<float>(
        kSq8(query_code, codes + ids[i] * stride_bytes, dim));
  }
}

// ------------------------------------------------------------------ scalar

// Canonical tree reduction of the 16 partial sums (see file comment).
inline float ReduceLanes16(const float* lanes) {
  float r8[8];
  for (int j = 0; j < 8; ++j) r8[j] = lanes[j] + lanes[j + 8];
  float r4[4];
  for (int j = 0; j < 4; ++j) r4[j] = r8[j] + r8[j + 4];
  const float r2_0 = r4[0] + r4[2];
  const float r2_1 = r4[1] + r4[3];
  return r2_0 + r2_1;
}

float L2SqrScalarKernel(const float* a, const float* b, uint32_t dim) {
  float lanes[16] = {};
  const uint32_t body = dim & ~15u;
  uint32_t i = 0;
  for (; i < body; i += 16) {
    for (uint32_t j = 0; j < 16; ++j) {
      const float diff = a[i + j] - b[i + j];
      lanes[j] += diff * diff;
    }
  }
  float sum = ReduceLanes16(lanes);
  for (; i < dim; ++i) {
    const float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

float DotScalarKernel(const float* a, const float* b, uint32_t dim) {
  float lanes[16] = {};
  const uint32_t body = dim & ~15u;
  uint32_t i = 0;
  for (; i < body; i += 16) {
    for (uint32_t j = 0; j < 16; ++j) lanes[j] += a[i + j] * b[i + j];
  }
  float sum = ReduceLanes16(lanes);
  for (; i < dim; ++i) sum += a[i] * b[i];
  return sum;
}

float NormSqrScalarKernel(const float* a, uint32_t dim) {
  return DotScalarKernel(a, a, dim);
}

// Symmetric code-space distance: Σ (qcode[d] - code[d])² in uint32. Integer
// addition is associative, so unlike the float kernels above the vector
// forms may pick any lane width/order and still match this loop bit-for-bit.
// No overflow below dim 66052: each diff² ≤ 255² = 65025.
uint32_t L2SqrSQ8ScalarKernel(const uint8_t* query_code, const uint8_t* code,
                              uint32_t dim) {
  uint32_t sum = 0;
  for (uint32_t i = 0; i < dim; ++i) {
    const int32_t diff = static_cast<int32_t>(query_code[i]) -
                         static_cast<int32_t>(code[i]);
    sum += static_cast<uint32_t>(diff * diff);
  }
  return sum;
}

constexpr KernelOps kScalarOps = {
    L2SqrScalarKernel,
    DotScalarKernel,
    NormSqrScalarKernel,
    L2SqrBatchWith<L2SqrScalarKernel>,
    L2SqrSQ8ScalarKernel,
    L2SqrSQ8BatchWith<L2SqrSQ8ScalarKernel>,
};

// -------------------------------------------------------------------- AVX2

#if WEAVESS_KERNELS_X86

// r8 = lo + hi is the canonical lane[j] + lane[j+8] step; the rest mirrors
// ReduceLanes16's tree exactly.
__attribute__((target("avx2"))) inline float Reduce16Avx2(__m256 lo,
                                                          __m256 hi) {
  const __m256 r8 = _mm256_add_ps(lo, hi);
  const __m128 r4 =
      _mm_add_ps(_mm256_castps256_ps128(r8), _mm256_extractf128_ps(r8, 1));
  const __m128 r2 = _mm_add_ps(r4, _mm_movehl_ps(r4, r4));
  const __m128 r1 = _mm_add_ss(r2, _mm_shuffle_ps(r2, r2, 0x55));
  return _mm_cvtss_f32(r1);
}

__attribute__((target("avx2"))) float L2SqrAvx2(const float* a,
                                                const float* b,
                                                uint32_t dim) {
  __m256 acc_lo = _mm256_setzero_ps();
  __m256 acc_hi = _mm256_setzero_ps();
  const uint32_t body = dim & ~15u;
  uint32_t i = 0;
  for (; i < body; i += 16) {
    const __m256 d_lo =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d_hi =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc_lo = _mm256_add_ps(acc_lo, _mm256_mul_ps(d_lo, d_lo));
    acc_hi = _mm256_add_ps(acc_hi, _mm256_mul_ps(d_hi, d_hi));
  }
  float sum = Reduce16Avx2(acc_lo, acc_hi);
  for (; i < dim; ++i) {
    const float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

__attribute__((target("avx2"))) float DotAvx2(const float* a, const float* b,
                                              uint32_t dim) {
  __m256 acc_lo = _mm256_setzero_ps();
  __m256 acc_hi = _mm256_setzero_ps();
  const uint32_t body = dim & ~15u;
  uint32_t i = 0;
  for (; i < body; i += 16) {
    acc_lo = _mm256_add_ps(
        acc_lo, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
    acc_hi = _mm256_add_ps(
        acc_hi,
        _mm256_mul_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8)));
  }
  float sum = Reduce16Avx2(acc_lo, acc_hi);
  for (; i < dim; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2"))) float NormSqrAvx2(const float* a,
                                                  uint32_t dim) {
  return DotAvx2(a, a, dim);
}

// 16 codes per iteration: one 16-byte load per operand, widen u8 → i16,
// subtract, then vpmaddwd squares-and-pairs into 8 epi32 partials. Integer
// throughout, so the result equals the scalar loop exactly. Lane totals stay
// below 2³¹ for any dim the uint32 contract admits (each vpmaddwd term is
// ≤ 2·255²).
__attribute__((target("avx2"))) uint32_t L2SqrSQ8Avx2(
    const uint8_t* query_code, const uint8_t* code, uint32_t dim) {
  __m256i acc = _mm256_setzero_si256();
  const uint32_t body = dim & ~15u;
  uint32_t i = 0;
  for (; i < body; i += 16) {
    const __m256i q = _mm256_cvtepu8_epi16(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(query_code + i)));
    const __m256i c = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + i)));
    const __m256i diff = _mm256_sub_epi16(q, c);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(diff, diff));
  }
  const __m128i r4 = _mm_add_epi32(_mm256_castsi256_si128(acc),
                                   _mm256_extracti128_si256(acc, 1));
  const __m128i r2 = _mm_add_epi32(r4, _mm_shuffle_epi32(r4, 0x4e));
  const __m128i r1 = _mm_add_epi32(r2, _mm_shuffle_epi32(r2, 0xb1));
  uint32_t sum = static_cast<uint32_t>(_mm_cvtsi128_si32(r1));
  for (; i < dim; ++i) {
    const int32_t diff = static_cast<int32_t>(query_code[i]) -
                         static_cast<int32_t>(code[i]);
    sum += static_cast<uint32_t>(diff * diff);
  }
  return sum;
}

constexpr KernelOps kAvx2Ops = {
    L2SqrAvx2,
    DotAvx2,
    NormSqrAvx2,
    L2SqrBatchWith<L2SqrAvx2>,
    L2SqrSQ8Avx2,
    L2SqrSQ8BatchWith<L2SqrSQ8Avx2>,
};

// ----------------------------------------------------------------- AVX-512

// High 256 bits extracted via the f64x4 form, which needs only AVX-512F
// (extractf32x8 would require DQ).
__attribute__((target("avx512f"))) inline float Reduce16Avx512(__m512 acc) {
  const __m256 lo = _mm512_castps512_ps256(acc);
  const __m256 hi = _mm256_castpd_ps(
      _mm512_extractf64x4_pd(_mm512_castps_pd(acc), 1));
  const __m256 r8 = _mm256_add_ps(lo, hi);
  const __m128 r4 =
      _mm_add_ps(_mm256_castps256_ps128(r8), _mm256_extractf128_ps(r8, 1));
  const __m128 r2 = _mm_add_ps(r4, _mm_movehl_ps(r4, r4));
  const __m128 r1 = _mm_add_ss(r2, _mm_shuffle_ps(r2, r2, 0x55));
  return _mm_cvtss_f32(r1);
}

__attribute__((target("avx512f"))) float L2SqrAvx512(const float* a,
                                                     const float* b,
                                                     uint32_t dim) {
  __m512 acc = _mm512_setzero_ps();
  const uint32_t body = dim & ~15u;
  uint32_t i = 0;
  for (; i < body; i += 16) {
    const __m512 d = _mm512_sub_ps(_mm512_loadu_ps(a + i),
                                   _mm512_loadu_ps(b + i));
    acc = _mm512_add_ps(acc, _mm512_mul_ps(d, d));
  }
  float sum = Reduce16Avx512(acc);
  for (; i < dim; ++i) {
    const float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

__attribute__((target("avx512f"))) float DotAvx512(const float* a,
                                                   const float* b,
                                                   uint32_t dim) {
  __m512 acc = _mm512_setzero_ps();
  const uint32_t body = dim & ~15u;
  uint32_t i = 0;
  for (; i < body; i += 16) {
    acc = _mm512_add_ps(
        acc, _mm512_mul_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i)));
  }
  float sum = Reduce16Avx512(acc);
  for (; i < dim; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx512f"))) float NormSqrAvx512(const float* a,
                                                       uint32_t dim) {
  return DotAvx512(a, a, dim);
}

// The AVX-512 table reuses the AVX2 SQ8 kernel: 512-bit vpmaddwd requires
// AVX-512BW, which the avx512f dispatch baseline does not guarantee, and
// every avx512f CPU executes the AVX2 form (integer results are identical
// at any width regardless).
constexpr KernelOps kAvx512Ops = {
    L2SqrAvx512,
    DotAvx512,
    NormSqrAvx512,
    L2SqrBatchWith<L2SqrAvx512>,
    L2SqrSQ8Avx2,
    L2SqrSQ8BatchWith<L2SqrSQ8Avx2>,
};

#endif  // WEAVESS_KERNELS_X86

// -------------------------------------------------------------------- NEON

#if WEAVESS_KERNELS_NEON

// q0..q3 hold lanes 0-3 / 4-7 / 8-11 / 12-15; q0+q2 and q1+q3 are the
// canonical lane[j] + lane[j+8] step, then the 8-lane tree as usual.
// vmulq + vaddq, never vmlaq/vfmaq: fused multiply-add rounds differently.
inline float Reduce16Neon(float32x4_t q0, float32x4_t q1, float32x4_t q2,
                          float32x4_t q3) {
  const float32x4_t r8_lo = vaddq_f32(q0, q2);
  const float32x4_t r8_hi = vaddq_f32(q1, q3);
  const float32x4_t r4 = vaddq_f32(r8_lo, r8_hi);
  const float32x2_t r2 = vadd_f32(vget_low_f32(r4), vget_high_f32(r4));
  return vget_lane_f32(vpadd_f32(r2, r2), 0);
}

float L2SqrNeon(const float* a, const float* b, uint32_t dim) {
  float32x4_t q0 = vdupq_n_f32(0.0f), q1 = q0, q2 = q0, q3 = q0;
  const uint32_t body = dim & ~15u;
  uint32_t i = 0;
  for (; i < body; i += 16) {
    const float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    const float32x4_t d1 =
        vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    const float32x4_t d2 =
        vsubq_f32(vld1q_f32(a + i + 8), vld1q_f32(b + i + 8));
    const float32x4_t d3 =
        vsubq_f32(vld1q_f32(a + i + 12), vld1q_f32(b + i + 12));
    q0 = vaddq_f32(q0, vmulq_f32(d0, d0));
    q1 = vaddq_f32(q1, vmulq_f32(d1, d1));
    q2 = vaddq_f32(q2, vmulq_f32(d2, d2));
    q3 = vaddq_f32(q3, vmulq_f32(d3, d3));
  }
  float sum = Reduce16Neon(q0, q1, q2, q3);
  for (; i < dim; ++i) {
    const float diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

float DotNeon(const float* a, const float* b, uint32_t dim) {
  float32x4_t q0 = vdupq_n_f32(0.0f), q1 = q0, q2 = q0, q3 = q0;
  const uint32_t body = dim & ~15u;
  uint32_t i = 0;
  for (; i < body; i += 16) {
    q0 = vaddq_f32(q0, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    q1 = vaddq_f32(q1, vmulq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4)));
    q2 = vaddq_f32(q2, vmulq_f32(vld1q_f32(a + i + 8), vld1q_f32(b + i + 8)));
    q3 = vaddq_f32(q3,
                   vmulq_f32(vld1q_f32(a + i + 12), vld1q_f32(b + i + 12)));
  }
  float sum = Reduce16Neon(q0, q1, q2, q3);
  for (; i < dim; ++i) sum += a[i] * b[i];
  return sum;
}

float NormSqrNeon(const float* a, uint32_t dim) { return DotNeon(a, a, dim); }

// 16 codes per iteration: vabdq_u8 absolute differences, vmull_u8 squares
// (|diff|² == diff², so unsigned widening multiply is exact), vpadalq_u16
// pairwise-accumulates into u32 lanes. Integer throughout — equal to the
// scalar loop at every dim.
uint32_t L2SqrSQ8Neon(const uint8_t* query_code, const uint8_t* code,
                      uint32_t dim) {
  uint32x4_t acc = vdupq_n_u32(0);
  const uint32_t body = dim & ~15u;
  uint32_t i = 0;
  for (; i < body; i += 16) {
    const uint8x16_t ad = vabdq_u8(vld1q_u8(query_code + i),
                                   vld1q_u8(code + i));
    acc = vpadalq_u16(acc, vmull_u8(vget_low_u8(ad), vget_low_u8(ad)));
    acc = vpadalq_u16(acc, vmull_u8(vget_high_u8(ad), vget_high_u8(ad)));
  }
  const uint32x2_t r2 = vadd_u32(vget_low_u32(acc), vget_high_u32(acc));
  uint32_t sum = vget_lane_u32(vpadd_u32(r2, r2), 0);
  for (; i < dim; ++i) {
    const int32_t diff = static_cast<int32_t>(query_code[i]) -
                         static_cast<int32_t>(code[i]);
    sum += static_cast<uint32_t>(diff * diff);
  }
  return sum;
}

constexpr KernelOps kNeonOps = {
    L2SqrNeon,
    DotNeon,
    NormSqrNeon,
    L2SqrBatchWith<L2SqrNeon>,
    L2SqrSQ8Neon,
    L2SqrSQ8BatchWith<L2SqrSQ8Neon>,
};

#endif  // WEAVESS_KERNELS_NEON

}  // namespace

const KernelOps* OpsFor(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return &kScalarOps;
    case KernelLevel::kAvx2:
#if WEAVESS_KERNELS_X86
      if (__builtin_cpu_supports("avx2")) return &kAvx2Ops;
#endif
      return nullptr;
    case KernelLevel::kAvx512:
#if WEAVESS_KERNELS_X86
      if (__builtin_cpu_supports("avx512f")) return &kAvx512Ops;
#endif
      return nullptr;
    case KernelLevel::kNeon:
#if WEAVESS_KERNELS_NEON
      return &kNeonOps;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

}  // namespace detail
}  // namespace weavess
