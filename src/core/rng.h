// Deterministic pseudo-random number generation for index construction and
// workload synthesis. Every stochastic step in the library draws from an
// explicitly seeded Rng so that builds, tests, and benchmarks are
// reproducible run-to-run (Appendix Q of the paper shows single trials are
// representative; determinism makes them exactly repeatable).
#ifndef WEAVESS_CORE_RNG_H_
#define WEAVESS_CORE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace weavess {

/// xoshiro256** PRNG seeded via SplitMix64. Small, fast, and statistically
/// strong enough for sampling neighbors / projections; not for cryptography.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// Standard normal variate (Box-Muller, cached pair).
  double NextGaussian();

  /// Samples `count` distinct values from [0, population) (count <=
  /// population). Order is random. Uses Floyd's algorithm for small counts.
  std::vector<uint32_t> SampleDistinct(uint32_t population, uint32_t count);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Deterministic 64-bit FNV-1a hash of a byte buffer folded with `seed`.
/// Search-time randomness (e.g. random entry vertices) is derived from
/// HashBytes(query, ...) so that a query's seeds are a pure function of
/// (seed, query vector): re-running a query — on any thread, in any batch
/// order — sees identical entries, which is what makes concurrent search
/// bit-for-bit reproducible.
uint64_t HashBytes(const void* bytes, size_t len, uint64_t seed);

}  // namespace weavess

#endif  // WEAVESS_CORE_RNG_H_
