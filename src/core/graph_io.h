// Versioned, checksummed on-disk format for graph indexes. Full layout
// specification in docs/PERSISTENCE.md; in brief (everything little-endian):
//
//   [ 0..8)   magic "WVSGRPH1"
//   [ 8..12)  u32 format version (currently 1)
//   [12..16)  u32 num_vertices
//   [16..24)  u64 num_edges (total stored arcs)
//   [24..28)  u32 metadata length in bytes
//   [28..32)  u32 CRC32C of bytes [0..28)            — header section
//   then      (num_vertices + 1) u64 adjacency prefix offsets, u32 CRC
//   then      num_edges u32 neighbor ids,            u32 CRC
//   then      metadata bytes (opaque to the format), u32 CRC
//
// Every section is independently CRC32C-protected; Load never aborts and
// never returns a silently wrong graph — any mismatch yields
// Status::Corruption with a byte-offset diagnostic.
#ifndef WEAVESS_CORE_GRAPH_IO_H_
#define WEAVESS_CORE_GRAPH_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/file_io.h"
#include "core/graph.h"
#include "core/status.h"

namespace weavess {

inline constexpr char kGraphMagic[8] = {'W', 'V', 'S', 'G', 'R', 'P', 'H',
                                        '1'};
inline constexpr uint32_t kGraphFormatVersion = 1;
/// Fixed prologue: magic + version + counts + metadata length + header CRC.
inline constexpr size_t kGraphHeaderBytes = 32;
/// Upper bound on the metadata section; anything larger is corruption.
inline constexpr uint32_t kMaxGraphMetadataBytes = 1u << 20;

/// Serializes `graph` (plus opaque `metadata`, e.g. the algorithm name and
/// build parameters) into the format above.
std::string SerializeGraph(const Graph& graph, std::string_view metadata = {});

/// Parses a serialized graph, validating magic, version, every CRC, the
/// offset table's monotonicity, and every neighbor id. On success, stores
/// the metadata section into `*metadata` when non-null.
StatusOr<Graph> DeserializeGraph(std::string_view bytes,
                                 std::string* metadata = nullptr);

/// Streams the serialized form through `writer` (fault-injectable).
Status SaveGraphToWriter(const Graph& graph, std::string_view metadata,
                         Writer& writer);

/// Reads a full serialized graph from `reader` (short reads are handled).
StatusOr<Graph> LoadGraphFromReader(Reader& reader,
                                    std::string* metadata = nullptr);

Status SaveGraph(const Graph& graph, const std::string& path,
                 std::string_view metadata = {});
StatusOr<Graph> LoadGraph(const std::string& path,
                          std::string* metadata = nullptr);

/// Per-section verification result for `weavess_cli verify`.
struct GraphSectionReport {
  std::string name;      // "header", "offsets", "payload", "metadata"
  uint64_t offset = 0;   // byte offset of the section's payload
  uint64_t length = 0;   // payload bytes (excluding the trailing CRC)
  uint32_t stored_crc = 0;
  uint32_t computed_crc = 0;
  bool ok = false;
};

struct GraphFileReport {
  Status status;  // overall verdict (OK only if every check passed)
  uint32_t version = 0;
  uint32_t num_vertices = 0;
  uint64_t num_edges = 0;
  std::string metadata;
  std::vector<GraphSectionReport> sections;
};

/// Checks magic/version/CRCs of a graph file without constructing the
/// graph; reports every section it could locate even when earlier ones
/// fail, so the CLI can print a complete diagnosis.
GraphFileReport VerifyGraphFile(const std::string& path);
GraphFileReport VerifyGraphBytes(std::string_view bytes);

}  // namespace weavess

#endif  // WEAVESS_CORE_GRAPH_IO_H_
