// Quantized counterpart of DistanceOracle: bundles an SQ8 code matrix, the
// query's own code row, the symmetric code-space metric, and the evaluation
// counter. The routers are templated on the oracle type, so graph traversal
// runs unchanged over quantized distances — only the per-candidate
// evaluation swaps from float rows to code rows. The float query argument
// the routers pass through is ignored; the oracle compares against the
// pre-encoded query code (QuantizedDataset::EncodeQuery, done once per
// search), which is what makes the hot loop pure uint8 arithmetic.
#ifndef WEAVESS_QUANT_QUANTIZED_ORACLE_H_
#define WEAVESS_QUANT_QUANTIZED_ORACLE_H_

#include <cstddef>
#include <cstdint>

#include "core/distance.h"
#include "quant/sq8.h"

namespace weavess {

/// Distance oracle over SQ8 codes. Evaluations count into the same
/// DistanceCounter machinery as float evaluations (they arm the search
/// budget during quantized traversal); QueryStats reports them separately
/// as quantized_evals.
class QuantizedOracle {
 public:
  /// `query_code` is the dim()-byte encoded query; it must outlive the
  /// oracle (the index keeps it in per-query scratch).
  QuantizedOracle(const QuantizedDataset& codes, const uint8_t* query_code,
                  DistanceCounter* counter)
      : codes_(&codes), query_code_(query_code), counter_(counter) {}

  /// Symmetric code-space distance between the encoded query and stored
  /// code row id, as a float (exact integer sum, converted once).
  float ToQuery(const float* /*query*/, uint32_t id) {
    Count();
    return static_cast<float>(
        L2SqrSQ8(query_code_, codes_->Code(id), codes_->dim()));
  }

  /// Batched form: out[i] corresponds to ids[i]; counts n evaluations and
  /// is bit-for-bit equal to n ToQuery calls (the batch adds prefetch).
  void ToQueryBatch(const float* /*query*/, const uint32_t* ids, size_t n,
                    float* out) {
    if (counter_ != nullptr) counter_->count += n;
    L2SqrSQ8Batch(query_code_, codes_->CodeBase(), codes_->code_stride(),
                  codes_->dim(), ids, n, out);
  }

  const QuantizedDataset& codes() const { return *codes_; }
  uint32_t dim() const { return codes_->dim(); }
  uint32_t size() const { return codes_->size(); }
  uint64_t evaluations() const { return counter_ ? counter_->count : 0; }

 private:
  void Count() {
    if (counter_ != nullptr) ++counter_->count;
  }

  const QuantizedDataset* codes_;
  const uint8_t* query_code_;
  DistanceCounter* counter_;
};

}  // namespace weavess

#endif  // WEAVESS_QUANT_QUANTIZED_ORACLE_H_
