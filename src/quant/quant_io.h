// Versioned, checksummed on-disk format for SQ8 quantized codes, the
// sibling of the WVSGRPH1 graph format (core/graph_io.h). Full layout in
// docs/QUANTIZATION.md; in brief (everything little-endian):
//
//   [ 0..8)   magic "WVSSQNT1"
//   [ 8..12)  u32 format version (currently 1)
//   [12..16)  u32 num code rows
//   [16..20)  u32 dim
//   [20..24)  u32 code row stride in bytes (dim padded to 64)
//   [24..28)  u32 CRC32C of bytes [0..24)            — header section
//   then      dim f32 per-dimension mins,            u32 CRC
//   then      dim f32 per-dimension scales,          u32 CRC
//   then      num * stride u8 code rows,             u32 CRC
//
// Every section is independently CRC32C-protected; Load never aborts and
// never returns silently wrong codes — any mismatch yields
// Status::Corruption with a byte-offset diagnostic. Serving treats corrupt
// codes as a degradation, not a failure: the shard falls back to float
// traversal (search/serving.h).
#ifndef WEAVESS_QUANT_QUANT_IO_H_
#define WEAVESS_QUANT_QUANT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/file_io.h"
#include "core/status.h"
#include "quant/sq8.h"

namespace weavess {

inline constexpr char kQuantizedMagic[8] = {'W', 'V', 'S', 'S', 'Q', 'N',
                                            'T', '1'};
inline constexpr uint32_t kQuantizedFormatVersion = 1;
/// Fixed prologue: magic + version + counts + stride + header CRC.
inline constexpr size_t kQuantizedHeaderBytes = 28;
/// Upper bound on dim; anything larger is corruption, and it keeps every
/// size computation far from u64 overflow.
inline constexpr uint32_t kMaxQuantizedDim = 1u << 16;

/// True when `bytes` begins with the WVSSQNT1 magic — how the CLI verify
/// subcommand sniffs file kinds.
bool IsQuantizedBytes(std::string_view bytes);

/// Serializes the code matrix + dequantization arrays into the format
/// above.
std::string SerializeQuantized(const QuantizedDataset& codes);

/// Parses serialized codes, validating magic, version, stride consistency,
/// and every CRC.
StatusOr<QuantizedDataset> DeserializeQuantized(std::string_view bytes);

/// Streams the serialized form through `writer` (fault-injectable).
Status SaveQuantizedToWriter(const QuantizedDataset& codes, Writer& writer);

/// Reads full serialized codes from `reader` (short reads are handled).
StatusOr<QuantizedDataset> LoadQuantizedFromReader(Reader& reader);

Status SaveQuantized(const QuantizedDataset& codes, const std::string& path);
StatusOr<QuantizedDataset> LoadQuantized(const std::string& path);

/// Per-section verification result for `weavess_cli verify`, mirroring
/// GraphSectionReport.
struct QuantSectionReport {
  std::string name;  // "header", "mins", "scales", "codes"
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t stored_crc = 0;
  uint32_t computed_crc = 0;
  bool ok = false;
};

struct QuantFileReport {
  Status status;  // overall verdict (OK only if every check passed)
  uint32_t version = 0;
  uint32_t num = 0;
  uint32_t dim = 0;
  uint32_t code_stride = 0;
  std::vector<QuantSectionReport> sections;
};

/// Checks magic/version/CRCs without materializing the codes; reports every
/// section it could locate even when earlier ones fail.
QuantFileReport VerifyQuantizedBytes(std::string_view bytes);
QuantFileReport VerifyQuantizedFile(const std::string& path);

}  // namespace weavess

#endif  // WEAVESS_QUANT_QUANT_IO_H_
