#include "quant/sq8.h"

#include <cmath>

namespace weavess {

QuantizedDataset::QuantizedDataset(uint32_t num, uint32_t dim,
                                   AlignedByteVector codes,
                                   AlignedFloatVector mins,
                                   AlignedFloatVector scales)
    : num_(num),
      dim_(dim),
      stride_(PaddedStride(dim)),
      codes_(std::move(codes)),
      mins_(std::move(mins)),
      scales_(std::move(scales)) {
  WEAVESS_CHECK(codes_.size() == static_cast<size_t>(num_) * stride_ &&
                "code storage must be num * PaddedStride(dim) bytes");
  WEAVESS_CHECK(mins_.size() == dim_ && scales_.size() == dim_ &&
                "mins/scales must hold one float per dimension");
}

SQ8Codec SQ8Codec::Train(const Dataset& data) {
  SQ8Codec codec;
  codec.dim_ = data.dim();
  codec.mins_.assign(data.dim(), 0.0f);
  codec.scales_.assign(data.dim(), 0.0f);
  if (data.empty() || data.dim() == 0) return codec;

  AlignedFloatVector maxs(data.dim(), 0.0f);
  for (uint32_t d = 0; d < data.dim(); ++d) {
    codec.mins_[d] = data.Row(0)[d];
    maxs[d] = data.Row(0)[d];
  }
  for (uint32_t i = 1; i < data.size(); ++i) {
    const float* row = data.Row(i);
    for (uint32_t d = 0; d < data.dim(); ++d) {
      if (row[d] < codec.mins_[d]) codec.mins_[d] = row[d];
      if (row[d] > maxs[d]) maxs[d] = row[d];
    }
  }
  for (uint32_t d = 0; d < data.dim(); ++d) {
    // scale 0 marks a constant dimension: code 0 dequantizes exactly to
    // min (the constant), and EncodeValue maps everything to 0.
    codec.scales_[d] = (maxs[d] - codec.mins_[d]) / 255.0f;
  }
  return codec;
}

namespace {

// Shared by SQ8Codec::EncodeValue and QuantizedDataset::EncodeQuery so a
// query encodes through the exact rounding/clamping the stored codes used.
inline uint8_t EncodeWith(float v, float min, float scale) {
  if (scale <= 0.0f) return 0;
  const float level = std::round((v - min) / scale);
  if (level <= 0.0f) return 0;
  if (level >= 255.0f) return 255;
  return static_cast<uint8_t>(level);
}

}  // namespace

void QuantizedDataset::EncodeQuery(const float* query, uint8_t* out) const {
  for (uint32_t d = 0; d < dim_; ++d) {
    out[d] = EncodeWith(query[d], mins_[d], scales_[d]);
  }
}

uint8_t SQ8Codec::EncodeValue(float v, uint32_t d) const {
  WEAVESS_DCHECK(d < dim_);
  return EncodeWith(v, mins_[d], scales_[d]);
}

QuantizedDataset SQ8Codec::Encode(const Dataset& data) const {
  WEAVESS_CHECK(data.dim() == dim_ &&
                "codec was trained for a different dimensionality");
  const uint32_t stride = QuantizedDataset::PaddedStride(dim_);
  AlignedByteVector codes(static_cast<size_t>(data.size()) * stride, 0);
  for (uint32_t i = 0; i < data.size(); ++i) {
    const float* row = data.Row(i);
    uint8_t* out = codes.data() + static_cast<size_t>(i) * stride;
    for (uint32_t d = 0; d < dim_; ++d) out[d] = EncodeValue(row[d], d);
  }
  return QuantizedDataset(data.size(), dim_, std::move(codes), mins_,
                          scales_);
}

}  // namespace weavess
