// Two-stage quantized index (`SQ8:<Algo>` in the registry): graph traversal
// runs over SQ8 codes through the templated routers, then the closest
// rescore_factor * k quantized candidates are re-ranked with exact float
// distances before the final top-k (docs/QUANTIZATION.md).
//
// Two construction paths share one search routine:
//   - registry: `SQ8:<Algo>` builds the inner algorithm's graph on floats,
//     then trains an SQ8Codec over the same dataset and drops the float
//     rows from the hot path;
//   - load: a deserialized graph + WVSSQNT1 codes (serving snapshots,
//     ServingEngine::FromSavedGraphWithCodes).
//
// Search stays a pure function of (index, query bytes, params): seeds are
// query-hash-derived and both stages evaluate through the bit-for-bit
// dispatch-invariant kernels, so results are identical at any thread count
// and any SIMD level.
#ifndef WEAVESS_QUANT_QUANTIZED_INDEX_H_
#define WEAVESS_QUANT_QUANTIZED_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/flat_graph.h"
#include "core/index.h"
#include "quant/sq8.h"

namespace weavess {

struct AlgorithmOptions;  // algorithms/registry.h

class QuantizedIndex final : public AnnIndex {
 public:
  /// Registry path: Build() constructs `inner_name` (a base algorithm) over
  /// the dataset, then trains and encodes the SQ8 codes.
  QuantizedIndex(const std::string& inner_name,
                 const AlgorithmOptions& options);

  /// Load path: a pre-built graph and pre-encoded codes. `data` backs the
  /// exact rescoring stage and must have graph.size() rows of codes.dim()
  /// floats, outliving the index.
  QuantizedIndex(Graph graph, QuantizedDataset codes, const Dataset& data,
                 std::string metadata);

  ~QuantizedIndex() override;

  void Build(const Dataset& data) override;

  std::vector<uint32_t> SearchWith(SearchScratch& scratch, const float* query,
                                   const SearchParams& params,
                                   QueryStats* stats) const override;

  const Graph& graph() const override;

  /// Graph + CSR + code storage. The float rows are excluded (shared by
  /// every index equally), which is what makes the ~4x code-vs-float
  /// comparison visible through CodeMemoryBytes().
  size_t IndexMemoryBytes() const override;

  BuildStats build_stats() const override;

  std::string name() const override;

  /// Bytes of the SQ8 codes + dequantization arrays (the quant.code_bytes
  /// gauge).
  size_t CodeMemoryBytes() const { return codes_.MemoryBytes(); }

  const QuantizedDataset& codes() const { return codes_; }

 private:
  // Registry path state (unused on the load path).
  std::string inner_name_;
  std::unique_ptr<AlgorithmOptions> options_;
  std::unique_ptr<AnnIndex> inner_;

  // Load path state.
  Graph owned_graph_;
  std::string metadata_;

  // Shared search state, set by Build() or the load constructor.
  const Graph* graph_view_ = nullptr;
  std::unique_ptr<CsrGraph> csr_;
  QuantizedDataset codes_;
  const Dataset* data_ = nullptr;
  uint32_t num_seeds_ = 10;
  uint64_t seed_ = 2024;
};

}  // namespace weavess

#endif  // WEAVESS_QUANT_QUANTIZED_INDEX_H_
