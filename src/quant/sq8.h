// SQ8 scalar quantization (docs/QUANTIZATION.md): each dimension d learns
// an affine range [min_d, max_d] over the dataset and every stored float is
// encoded as one byte, code = round((v - min_d) / scale_d) clamped to
// [0, 255] with scale_d = (max_d - min_d) / 255. At search time the query
// is encoded once with the same codec and the quantized distance kernels
// (core/distance_kernels.cc) compare code rows directly — symmetric
// Σ (qcode - code)² in integer arithmetic; codes are never expanded back
// into float rows. Dequantization min_d + scale_d * code exists for
// diagnostics (Dequantize), not the hot path.
//
// A QuantizedDataset mirrors the padded-stride Dataset API: code rows are
// padded to kRowAlignment bytes so every Code(i) pointer starts on a cache
// line. At one byte per dimension, code rows are 4x denser than float rows,
// which is the whole point: 4x more vectors per cache/DRAM byte during
// graph traversal.
#ifndef WEAVESS_QUANT_SQ8_H_
#define WEAVESS_QUANT_SQ8_H_

#include <cstdint>
#include <vector>

#include "core/aligned.h"
#include "core/check.h"
#include "core/dataset.h"

namespace weavess {

/// Byte storage whose data() pointer is kRowAlignment-aligned (code rows).
using AlignedByteVector = std::vector<uint8_t, AlignedAllocator<uint8_t>>;

/// SQ8 code matrix: size() rows of dim() bytes at a fixed code_stride()
/// ≥ dim(), plus the per-dimension dequantization arrays (mins/scales).
/// Copyable value type, moves are cheap — the same contract as Dataset.
class QuantizedDataset {
 public:
  /// Bytes per row-alignment unit; code strides are rounded up to this.
  static constexpr uint32_t kCodeStrideQuantum =
      static_cast<uint32_t>(kRowAlignment);

  QuantizedDataset() = default;

  /// Takes ownership of pre-built storage. `codes` must hold
  /// num * PaddedStride(dim) bytes (padding zero-filled); `mins` and
  /// `scales` must each hold dim floats.
  QuantizedDataset(uint32_t num, uint32_t dim, AlignedByteVector codes,
                   AlignedFloatVector mins, AlignedFloatVector scales);

  /// Code row stride for a given dimensionality (dim rounded up to the
  /// alignment quantum).
  static uint32_t PaddedStride(uint32_t dim) {
    return (dim + kCodeStrideQuantum - 1) / kCodeStrideQuantum *
           kCodeStrideQuantum;
  }

  uint32_t size() const { return num_; }
  uint32_t dim() const { return dim_; }
  bool empty() const { return num_ == 0; }

  /// Bytes between consecutive code rows. The batched quantized kernels
  /// address rows as CodeBase() + id * code_stride().
  uint32_t code_stride() const { return stride_; }

  /// Base pointer of the code storage (64-byte aligned); null when empty.
  const uint8_t* CodeBase() const { return codes_.data(); }

  /// Pointer to the i-th code row (valid for dim() bytes, 64-byte aligned).
  const uint8_t* Code(uint32_t i) const {
    WEAVESS_DCHECK(i < num_);
    return codes_.data() + static_cast<size_t>(i) * stride_;
  }

  /// Per-dimension dequantization arrays (dim() floats each).
  const float* mins() const { return mins_.data(); }
  const float* scales() const { return scales_.data(); }

  /// Encodes a float query with the stored per-dimension codec — the same
  /// rounding/clamping as SQ8Codec::EncodeValue, so query codes live in
  /// the exact code space the symmetric quantized kernels compare in.
  /// `out` must hold dim() bytes.
  void EncodeQuery(const float* query, uint8_t* out) const;

  /// Dequantized value of dimension d of row i (exactly what the kernels
  /// compute on the fly).
  float Dequantize(uint32_t i, uint32_t d) const {
    WEAVESS_DCHECK(d < dim_);
    return mins_[d] + scales_[d] * static_cast<float>(Code(i)[d]);
  }

  /// The padded backing store (size() * code_stride() bytes). Padding is
  /// zero-filled, so raw equality implies logical equality.
  const AlignedByteVector& raw() const { return codes_; }

  /// Bytes consumed by codes + dequantization arrays, padding included —
  /// the quantized counterpart of Dataset::MemoryBytes for the ~4x
  /// vector-memory comparison.
  size_t MemoryBytes() const {
    return codes_.size() + (mins_.size() + scales_.size()) * sizeof(float);
  }

 private:
  uint32_t num_ = 0;
  uint32_t dim_ = 0;
  uint32_t stride_ = 0;
  AlignedByteVector codes_;
  AlignedFloatVector mins_;
  AlignedFloatVector scales_;
};

/// Learns per-dimension affine [min, max] ranges from a dataset and encodes
/// float rows into SQ8 codes. Training is a deterministic single pass, so
/// the same dataset always yields the same codec and codes.
class SQ8Codec {
 public:
  /// Per-dimension min/max over all rows. A constant dimension gets
  /// scale 0: every code is 0 and dequantizes exactly to the constant.
  static SQ8Codec Train(const Dataset& data);

  /// Encodes every row of `data` (which must match the trained dim).
  QuantizedDataset Encode(const Dataset& data) const;

  /// Encodes one value of dimension d.
  uint8_t EncodeValue(float v, uint32_t d) const;

  uint32_t dim() const { return dim_; }
  const AlignedFloatVector& mins() const { return mins_; }
  const AlignedFloatVector& scales() const { return scales_; }

 private:
  uint32_t dim_ = 0;
  AlignedFloatVector mins_;
  AlignedFloatVector scales_;
};

}  // namespace weavess

#endif  // WEAVESS_QUANT_SQ8_H_
