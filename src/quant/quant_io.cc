#include "quant/quant_io.h"

#include <cstring>
#include <tuple>

#include "core/crc32c.h"

namespace weavess {

namespace {

// Explicit little-endian encoding, same discipline as graph_io.cc: the
// format is byte-defined, not struct-defined.
void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xFF);
  bytes[1] = static_cast<char>((v >> 8) & 0xFF);
  bytes[2] = static_cast<char>((v >> 16) & 0xFF);
  bytes[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(bytes, 4);
}

void PutF32(std::string* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(out, bits);
}

uint32_t GetU32(std::string_view bytes, size_t offset) {
  const auto* p = reinterpret_cast<const uint8_t*>(bytes.data() + offset);
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

float GetF32(std::string_view bytes, size_t offset) {
  const uint32_t bits = GetU32(bytes, offset);
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

Status CorruptionAt(uint64_t byte_offset, const std::string& what) {
  return Status::Corruption(what + " at byte offset " +
                            std::to_string(byte_offset));
}

// Section sizes derived from the (validated) header fields.
struct Layout {
  uint64_t mins_begin;
  uint64_t floats_len;  // dim * 4, shared by mins and scales
  uint64_t scales_begin;
  uint64_t codes_begin;
  uint64_t codes_len;  // num * stride
  uint64_t total;      // expected file size

  static Layout For(uint64_t num, uint64_t dim, uint64_t stride) {
    Layout l;
    l.mins_begin = kQuantizedHeaderBytes;
    l.floats_len = dim * 4;
    l.scales_begin = l.mins_begin + l.floats_len + 4;
    l.codes_begin = l.scales_begin + l.floats_len + 4;
    l.codes_len = num * stride;
    l.total = l.codes_begin + l.codes_len + 4;
    return l;
  }
};

Status CheckHeader(std::string_view bytes, uint32_t* version, uint32_t* num,
                   uint32_t* dim, uint32_t* stride,
                   std::vector<QuantSectionReport>* report) {
  if (bytes.size() < kQuantizedHeaderBytes) {
    return Status::Corruption(
        "file too small: " + std::to_string(bytes.size()) +
        " bytes, a quantized-codes file needs at least " +
        std::to_string(kQuantizedHeaderBytes));
  }
  if (std::memcmp(bytes.data(), kQuantizedMagic, sizeof(kQuantizedMagic)) !=
      0) {
    return CorruptionAt(0, "bad magic (not a weavess quantized-codes file)");
  }
  const uint32_t stored_crc = GetU32(bytes, kQuantizedHeaderBytes - 4);
  const uint32_t computed_crc = Crc32c(bytes.data(), kQuantizedHeaderBytes - 4);
  if (report != nullptr) {
    report->push_back({"header", 0, kQuantizedHeaderBytes - 4, stored_crc,
                       computed_crc, stored_crc == computed_crc});
  }
  if (stored_crc != computed_crc) {
    return CorruptionAt(kQuantizedHeaderBytes - 4,
                        "header CRC mismatch: stored " + Hex(stored_crc) +
                            ", computed " + Hex(computed_crc));
  }
  *version = GetU32(bytes, 8);
  if (*version != kQuantizedFormatVersion) {
    return Status::NotSupported(
        "quantized-codes format version " + std::to_string(*version) +
        "; this build reads version " +
        std::to_string(kQuantizedFormatVersion));
  }
  *num = GetU32(bytes, 12);
  *dim = GetU32(bytes, 16);
  *stride = GetU32(bytes, 20);
  if (*dim == 0 || *dim > kMaxQuantizedDim) {
    return CorruptionAt(16, "dimension " + std::to_string(*dim) +
                                " outside [1, " +
                                std::to_string(kMaxQuantizedDim) + "]");
  }
  if (*stride != QuantizedDataset::PaddedStride(*dim)) {
    return CorruptionAt(
        20, "code stride " + std::to_string(*stride) + " does not match " +
                std::to_string(QuantizedDataset::PaddedStride(*dim)) +
                " (dim " + std::to_string(*dim) + " padded to alignment)");
  }
  return Status::OK();
}

Status CheckSection(std::string_view bytes, const char* name, uint64_t begin,
                    uint64_t len, std::vector<QuantSectionReport>* report) {
  const uint32_t stored_crc = GetU32(bytes, begin + len);
  const uint32_t computed_crc = Crc32c(bytes.data() + begin, len);
  if (report != nullptr) {
    report->push_back(
        {name, begin, len, stored_crc, computed_crc,
         stored_crc == computed_crc});
  }
  if (stored_crc != computed_crc) {
    return CorruptionAt(begin + len,
                        std::string(name) + " section CRC mismatch: stored " +
                            Hex(stored_crc) + ", computed " +
                            Hex(computed_crc));
  }
  return Status::OK();
}

// Shared by DeserializeQuantized and VerifyQuantizedBytes: structural
// validation of the whole byte buffer, materializing the codes when
// `codes_out` is non-null.
Status ParseQuantized(std::string_view bytes, QuantizedDataset* codes_out,
                      uint32_t* version_out, uint32_t* num_out,
                      uint32_t* dim_out, uint32_t* stride_out,
                      std::vector<QuantSectionReport>* report) {
  uint32_t version = 0, num = 0, dim = 0, stride = 0;
  WEAVESS_RETURN_IF_ERROR(
      CheckHeader(bytes, &version, &num, &dim, &stride, report));
  if (version_out != nullptr) *version_out = version;
  if (num_out != nullptr) *num_out = num;
  if (dim_out != nullptr) *dim_out = dim;
  if (stride_out != nullptr) *stride_out = stride;

  // Overflow guard: the code matrix must fit in the file before any
  // num * stride arithmetic is trusted (stride ≥ 64 once the header
  // validated, so the division is safe).
  if (num > bytes.size() / stride) {
    return CorruptionAt(12, "code count " + std::to_string(num) +
                                " cannot fit in a " +
                                std::to_string(bytes.size()) + "-byte file");
  }
  const Layout layout = Layout::For(num, dim, stride);
  if (layout.total != bytes.size()) {
    return Status::Corruption(
        "file size mismatch: header promises " + std::to_string(layout.total) +
        " bytes (" + std::to_string(num) + " rows of " +
        std::to_string(stride) + " code bytes, dim " + std::to_string(dim) +
        "), file has " + std::to_string(bytes.size()));
  }

  // In verify mode (report != nullptr) keep checking later sections after
  // a failure so the CLI can print a complete per-section diagnosis.
  Status section_status =
      CheckSection(bytes, "mins", layout.mins_begin, layout.floats_len,
                   report);
  if (!section_status.ok() && report == nullptr) return section_status;
  for (const auto& [name, begin, len] :
       {std::tuple("scales", layout.scales_begin, layout.floats_len),
        std::tuple("codes", layout.codes_begin, layout.codes_len)}) {
    const Status s = CheckSection(bytes, name, begin, len, report);
    if (section_status.ok()) section_status = s;
    if (!section_status.ok() && report == nullptr) return section_status;
  }
  WEAVESS_RETURN_IF_ERROR(section_status);

  // Scales must be non-negative finite reals — a negative or NaN scale
  // would silently invert or poison every distance.
  for (uint32_t d = 0; d < dim; ++d) {
    const uint64_t pos = layout.scales_begin + static_cast<uint64_t>(d) * 4;
    const float scale = GetF32(bytes, pos);
    if (!(scale >= 0.0f) || scale != scale || scale > 3.0e38f) {
      return CorruptionAt(pos, "scale for dimension " + std::to_string(d) +
                                   " is not a non-negative finite float");
    }
    const uint64_t min_pos = layout.mins_begin + static_cast<uint64_t>(d) * 4;
    const float min = GetF32(bytes, min_pos);
    if (min != min) {
      return CorruptionAt(min_pos,
                          "min for dimension " + std::to_string(d) + " is NaN");
    }
  }

  if (codes_out != nullptr) {
    AlignedFloatVector mins(dim), scales(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      mins[d] = GetF32(bytes, layout.mins_begin + static_cast<uint64_t>(d) * 4);
      scales[d] =
          GetF32(bytes, layout.scales_begin + static_cast<uint64_t>(d) * 4);
    }
    AlignedByteVector code_bytes(layout.codes_len);
    std::memcpy(code_bytes.data(), bytes.data() + layout.codes_begin,
                layout.codes_len);
    *codes_out = QuantizedDataset(num, dim, std::move(code_bytes),
                                  std::move(mins), std::move(scales));
  }
  return Status::OK();
}

}  // namespace

bool IsQuantizedBytes(std::string_view bytes) {
  return bytes.size() >= sizeof(kQuantizedMagic) &&
         std::memcmp(bytes.data(), kQuantizedMagic,
                     sizeof(kQuantizedMagic)) == 0;
}

std::string SerializeQuantized(const QuantizedDataset& codes) {
  WEAVESS_CHECK(codes.dim() >= 1 && codes.dim() <= kMaxQuantizedDim &&
                "only non-degenerate code matrices serialize");
  const Layout layout =
      Layout::For(codes.size(), codes.dim(), codes.code_stride());

  std::string out;
  out.reserve(layout.total);

  // Header.
  out.append(kQuantizedMagic, sizeof(kQuantizedMagic));
  PutU32(&out, kQuantizedFormatVersion);
  PutU32(&out, codes.size());
  PutU32(&out, codes.dim());
  PutU32(&out, codes.code_stride());
  PutU32(&out, Crc32c(out.data(), out.size()));

  // Mins.
  const size_t mins_begin = out.size();
  for (uint32_t d = 0; d < codes.dim(); ++d) PutF32(&out, codes.mins()[d]);
  PutU32(&out, Crc32c(out.data() + mins_begin, out.size() - mins_begin));

  // Scales.
  const size_t scales_begin = out.size();
  for (uint32_t d = 0; d < codes.dim(); ++d) PutF32(&out, codes.scales()[d]);
  PutU32(&out, Crc32c(out.data() + scales_begin, out.size() - scales_begin));

  // Codes (padding included — the stride is part of the format).
  const size_t codes_begin = out.size();
  out.append(reinterpret_cast<const char*>(codes.CodeBase()),
             codes.raw().size());
  PutU32(&out, Crc32c(out.data() + codes_begin, out.size() - codes_begin));

  WEAVESS_CHECK(out.size() == layout.total);
  return out;
}

StatusOr<QuantizedDataset> DeserializeQuantized(std::string_view bytes) {
  QuantizedDataset codes;
  WEAVESS_RETURN_IF_ERROR(ParseQuantized(bytes, &codes, nullptr, nullptr,
                                         nullptr, nullptr, nullptr));
  return codes;
}

Status SaveQuantizedToWriter(const QuantizedDataset& codes, Writer& writer) {
  const std::string bytes = SerializeQuantized(codes);
  WEAVESS_RETURN_IF_ERROR(writer.Append(bytes.data(), bytes.size()));
  return writer.Close();
}

StatusOr<QuantizedDataset> LoadQuantizedFromReader(Reader& reader) {
  std::string bytes;
  WEAVESS_RETURN_IF_ERROR(ReadAll(reader, &bytes));
  return DeserializeQuantized(bytes);
}

Status SaveQuantized(const QuantizedDataset& codes, const std::string& path) {
  StdioWriter writer;
  WEAVESS_RETURN_IF_ERROR(writer.Open(path));
  return SaveQuantizedToWriter(codes, writer);
}

StatusOr<QuantizedDataset> LoadQuantized(const std::string& path) {
  std::string bytes;
  WEAVESS_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  return DeserializeQuantized(bytes);
}

QuantFileReport VerifyQuantizedBytes(std::string_view bytes) {
  QuantFileReport report;
  report.status =
      ParseQuantized(bytes, nullptr, &report.version, &report.num,
                     &report.dim, &report.code_stride, &report.sections);
  return report;
}

QuantFileReport VerifyQuantizedFile(const std::string& path) {
  std::string bytes;
  const Status read = ReadFileToString(path, &bytes);
  if (!read.ok()) {
    QuantFileReport report;
    report.status = read;
    return report;
  }
  return VerifyQuantizedBytes(bytes);
}

}  // namespace weavess
