#include "quant/quantized_index.h"

#include <algorithm>
#include <utility>

#include "algorithms/registry.h"
#include "core/check.h"
#include "core/distance.h"
#include "core/neighbor.h"
#include "core/rng.h"
#include "quant/quantized_oracle.h"
#include "search/router.h"

namespace weavess {

QuantizedIndex::QuantizedIndex(const std::string& inner_name,
                               const AlgorithmOptions& options)
    : inner_name_(inner_name),
      options_(std::make_unique<AlgorithmOptions>(options)),
      num_seeds_(options.num_seeds > 0 ? options.num_seeds : 10),
      seed_(options.seed) {}

QuantizedIndex::QuantizedIndex(Graph graph, QuantizedDataset codes,
                               const Dataset& data, std::string metadata)
    : owned_graph_(std::move(graph)),
      metadata_(std::move(metadata)),
      graph_view_(&owned_graph_),
      csr_(std::make_unique<CsrGraph>(owned_graph_)),
      codes_(std::move(codes)),
      data_(&data) {
  WEAVESS_CHECK(codes_.size() == owned_graph_.size() &&
                codes_.size() == data.size() && codes_.dim() == data.dim() &&
                "codes must cover the graph's vertices and the dataset");
}

QuantizedIndex::~QuantizedIndex() = default;

void QuantizedIndex::Build(const Dataset& data) {
  WEAVESS_CHECK(graph_view_ == nullptr && "index is already built");
  WEAVESS_CHECK(options_ != nullptr && "load-path indexes are already built");
  inner_ = CreateAlgorithm(inner_name_, *options_);
  inner_->Build(data);
  codes_ = SQ8Codec::Train(data).Encode(data);
  graph_view_ = &inner_->graph();
  csr_ = std::make_unique<CsrGraph>(*graph_view_);
  data_ = &data;
}

const Graph& QuantizedIndex::graph() const {
  WEAVESS_CHECK(graph_view_ != nullptr && "index is not built");
  return *graph_view_;
}

size_t QuantizedIndex::IndexMemoryBytes() const {
  size_t bytes = codes_.MemoryBytes();
  if (inner_ != nullptr) {
    bytes += inner_->IndexMemoryBytes();
  } else {
    bytes += owned_graph_.MemoryBytes();
  }
  if (csr_ != nullptr) bytes += csr_->MemoryBytes();
  return bytes;
}

BuildStats QuantizedIndex::build_stats() const {
  return inner_ != nullptr ? inner_->build_stats() : BuildStats{};
}

std::string QuantizedIndex::name() const {
  if (!inner_name_.empty()) return "SQ8:" + inner_name_;
  return metadata_.empty() ? "SQ8:LoadedGraph" : "SQ8:" + metadata_;
}

std::vector<uint32_t> QuantizedIndex::SearchWith(SearchScratch& scratch,
                                                 const float* query,
                                                 const SearchParams& params,
                                                 QueryStats* stats) const {
  WEAVESS_CHECK(graph_view_ != nullptr && "index is not built");
  SearchContext& ctx = scratch.ctx;
  ctx.BeginQuery();

  // Stage 1: best-first traversal over SQ8 codes. The query is encoded
  // once with the stored codec, so every traversal evaluation is a pure
  // uint8 comparison; the search budget arms against quantized evaluations
  // — they are the traversal's work.
  ctx.query_code.resize(codes_.dim());
  codes_.EncodeQuery(query, ctx.query_code.data());
  DistanceCounter quantized_counter;
  QuantizedOracle quantized(codes_, ctx.query_code.data(),
                            &quantized_counter);
  ctx.ArmBudget(params.max_distance_evals, params.time_budget_us,
                &quantized_counter, params.clock);
  const uint32_t k = params.k;
  const uint32_t rescore_factor = std::max<uint32_t>(1, params.rescore_factor);
  const uint64_t rescore_want64 = static_cast<uint64_t>(rescore_factor) * k;
  const uint32_t rescore_want = static_cast<uint32_t>(
      std::min<uint64_t>(rescore_want64, codes_.size()));
  // The pool must hold the rescore breadth, else the widened candidates
  // would be evicted before stage 2 sees them.
  CandidatePool& pool = scratch.pool;
  pool.Reset(std::max({params.pool_size, rescore_want, k}));

  // Query-hash-derived random seeds, evaluated at quantized distance —
  // the same derivation RandomSeedProvider uses, so a repeated query on
  // any thread sees identical entries.
  const uint32_t want_seeds = std::min(num_seeds_, codes_.size());
  Rng rng(HashBytes(query, codes_.dim() * sizeof(float), seed_));
  const std::vector<uint32_t> seed_ids =
      rng.SampleDistinct(codes_.size(), want_seeds);
  SeedPool(seed_ids, query, quantized, ctx, pool);
  BestFirstSearch(*csr_, query, quantized, ctx, pool);

  // Stage 2: exact float rescoring of the closest rescore_want quantized
  // candidates. Rescore work is accounted separately (rescore_evals) and
  // runs even when the traversal budget tripped — the best-so-far pool
  // still deserves exact ranking.
  DistanceCounter rescore_counter;
  DistanceOracle exact(*data_, &rescore_counter);
  const auto& entries = pool.entries();
  const size_t want = std::min<size_t>(entries.size(), rescore_want);
  ctx.batch_ids.clear();
  for (size_t i = 0; i < want; ++i) ctx.batch_ids.push_back(entries[i].id);
  ctx.batch_dists.resize(want);
  exact.ToQueryBatch(query, ctx.batch_ids.data(), want,
                     ctx.batch_dists.data());
  std::vector<Neighbor> rescored;
  rescored.reserve(want);
  for (size_t i = 0; i < want; ++i) {
    rescored.emplace_back(ctx.batch_ids[i], ctx.batch_dists[i]);
  }
  // Neighbor orders by (distance, id): equal exact distances tie-break on
  // id, keeping the final ranking deterministic.
  std::sort(rescored.begin(), rescored.end());

  if (stats != nullptr) {
    stats->quantized_evals = quantized_counter.count;
    stats->rescore_evals = rescore_counter.count;
    stats->distance_evals = quantized_counter.count + rescore_counter.count;
    stats->hops = ctx.hops;
    stats->truncated = ctx.truncated;
  }
  std::vector<uint32_t> result;
  result.reserve(std::min<size_t>(k, rescored.size()));
  for (size_t i = 0; i < rescored.size() && i < k; ++i) {
    result.push_back(rescored[i].id);
  }
  return result;
}

}  // namespace weavess
