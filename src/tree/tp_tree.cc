#include "tree/tp_tree.h"

#include <algorithm>

#include "core/check.h"

namespace weavess {

namespace {

void Divide(const Dataset& data, std::vector<uint32_t>& ids, uint32_t begin,
            uint32_t end, const TpTreeParams& params, Rng& rng,
            std::vector<std::vector<uint32_t>>& leaves) {
  const uint32_t count = end - begin;
  if (count <= params.max_leaf_size) {
    leaves.emplace_back(ids.begin() + begin, ids.begin() + end);
    return;
  }
  // Sparse ±1 projection over a few random axes (TP-tree hyperplane).
  const uint32_t dim = data.dim();
  const uint32_t num_axes = std::min(params.axes_per_split, dim);
  std::vector<uint32_t> axes = rng.SampleDistinct(dim, num_axes);
  std::vector<float> weights(num_axes);
  for (auto& w : weights) w = rng.NextBounded(2) == 0 ? 1.0f : -1.0f;

  std::vector<std::pair<float, uint32_t>> scored;
  scored.reserve(count);
  for (uint32_t i = begin; i < end; ++i) {
    const float* row = data.Row(ids[i]);
    float projection = 0.0f;
    for (uint32_t a = 0; a < num_axes; ++a) {
      projection += weights[a] * row[axes[a]];
    }
    scored.emplace_back(projection, ids[i]);
  }
  const uint32_t mid_offset = count / 2;
  std::nth_element(scored.begin(), scored.begin() + mid_offset, scored.end());
  uint32_t write = begin;
  for (const auto& [projection, id] : scored) ids[write++] = id;

  Divide(data, ids, begin, begin + mid_offset, params, rng, leaves);
  Divide(data, ids, begin + mid_offset, end, params, rng, leaves);
}

}  // namespace

std::vector<std::vector<uint32_t>> TpTreePartition(const Dataset& data,
                                                   const TpTreeParams& params,
                                                   Rng& rng) {
  std::vector<uint32_t> ids(data.size());
  for (uint32_t i = 0; i < data.size(); ++i) ids[i] = i;
  return TpTreePartitionSubset(data, std::move(ids), params, rng);
}

std::vector<std::vector<uint32_t>> TpTreePartitionSubset(
    const Dataset& data, std::vector<uint32_t> ids, const TpTreeParams& params,
    Rng& rng) {
  WEAVESS_CHECK(params.max_leaf_size >= 2);
  std::vector<std::vector<uint32_t>> leaves;
  if (ids.empty()) return leaves;
  Divide(data, ids, 0, static_cast<uint32_t>(ids.size()), params, rng,
         leaves);
  return leaves;
}

}  // namespace weavess
