#include "tree/kmeans_tree.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace weavess {

namespace {

struct QueueEntry {
  float distance;
  uint32_t node;
};
struct QueueGreater {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    return a.distance > b.distance;
  }
};

}  // namespace

std::vector<std::vector<uint32_t>> BalancedKMeansAssign(
    const Dataset& data, const uint32_t* ids, uint32_t count, uint32_t k,
    uint32_t lloyd_iterations, Rng& rng) {
  std::vector<std::vector<uint32_t>> buckets(k);
  if (k == 0 || count == 0) return buckets;
  if (count <= k) {
    // Fewer points than clusters: one per bucket, no rng consumed.
    for (uint32_t i = 0; i < count; ++i) buckets[i].push_back(ids[i]);
    return buckets;
  }
  const uint32_t dim = data.dim();

  // Initialize centers from random distinct members.
  std::vector<std::vector<float>> centers(k, std::vector<float>(dim));
  {
    std::vector<uint32_t> picks = rng.SampleDistinct(count, k);
    for (uint32_t c = 0; c < k; ++c) {
      const float* row = data.Row(ids[picks[c]]);
      std::copy(row, row + dim, centers[c].begin());
    }
  }
  std::vector<uint32_t> assign(count, 0);
  const uint32_t balance_cap = (count + k - 1) / k * 2;  // 2x average size
  for (uint32_t iter = 0; iter < lloyd_iterations; ++iter) {
    // Assignment step with balance cap: a full cluster rejects new members
    // beyond `balance_cap`, which bounds the largest bucket.
    std::vector<uint32_t> sizes(k, 0);
    for (uint32_t i = 0; i < count; ++i) {
      const float* row = data.Row(ids[i]);
      float best = std::numeric_limits<float>::infinity();
      uint32_t best_c = 0;
      for (uint32_t c = 0; c < k; ++c) {
        if (sizes[c] >= balance_cap) continue;
        const float dist = L2Sqr(row, centers[c].data(), dim);
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      assign[i] = best_c;
      ++sizes[best_c];
    }
    // Update step.
    std::vector<std::vector<double>> acc(k, std::vector<double>(dim, 0.0));
    for (uint32_t i = 0; i < count; ++i) {
      const float* row = data.Row(ids[i]);
      auto& a = acc[assign[i]];
      for (uint32_t d = 0; d < dim; ++d) a[d] += row[d];
    }
    for (uint32_t c = 0; c < k; ++c) {
      if (sizes[c] == 0) {
        // Re-seed an empty cluster from a random point.
        const float* row = data.Row(ids[rng.NextBounded(count)]);
        std::copy(row, row + dim, centers[c].begin());
        continue;
      }
      for (uint32_t d = 0; d < dim; ++d) {
        centers[c][d] = static_cast<float>(acc[c][d] / sizes[c]);
      }
    }
  }

  // Stable bucket sort of ids by final assignment.
  for (uint32_t i = 0; i < count; ++i) {
    buckets[assign[i]].push_back(ids[i]);
  }
  // Guard against a degenerate single-bucket outcome (identical points):
  // split evenly to guarantee progress.
  uint32_t non_empty = 0;
  for (const auto& bucket : buckets) non_empty += bucket.empty() ? 0 : 1;
  if (non_empty <= 1) {
    buckets.assign(k, {});
    for (uint32_t i = 0; i < count; ++i) {
      buckets[i % k].push_back(ids[i]);
    }
  }
  return buckets;
}

KMeansTree::KMeansTree(const Dataset& data, const Params& params)
    : data_(&data), params_(params) {
  WEAVESS_CHECK(data.size() > 0);
  WEAVESS_CHECK(params.branching >= 2);
  ids_.resize(data.size());
  for (uint32_t i = 0; i < data.size(); ++i) ids_[i] = i;
  Rng rng(params.seed);
  BuildNode(0, data.size(), rng);
}

uint32_t KMeansTree::BuildNode(uint32_t begin, uint32_t end, Rng& rng) {
  const uint32_t index = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  const uint32_t dim = data_->dim();
  const uint32_t count = end - begin;

  // Subtree centroid (used as the routing point for this node).
  {
    std::vector<double> acc(dim, 0.0);
    for (uint32_t i = begin; i < end; ++i) {
      const float* row = data_->Row(ids_[i]);
      for (uint32_t d = 0; d < dim; ++d) acc[d] += row[d];
    }
    nodes_[index].centroid.resize(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      nodes_[index].centroid[d] =
          count > 0 ? static_cast<float>(acc[d] / count) : 0.0f;
    }
  }
  nodes_[index].begin = begin;
  nodes_[index].end = end;
  if (count <= std::max(params_.leaf_size, params_.branching)) {
    return index;  // leaf
  }

  // Balanced Lloyd split; buckets hold id values read before the write-back
  // below, so rewriting ids_[begin..end) in place is safe.
  const std::vector<std::vector<uint32_t>> buckets = BalancedKMeansAssign(
      *data_, ids_.data() + begin, count, params_.branching,
      params_.lloyd_iterations, rng);
  uint32_t write = begin;
  std::vector<std::pair<uint32_t, uint32_t>> child_ranges;
  for (const auto& bucket : buckets) {
    if (bucket.empty()) continue;
    const uint32_t child_begin = write;
    for (uint32_t id : bucket) ids_[write++] = id;
    child_ranges.emplace_back(child_begin, write);
  }
  std::vector<uint32_t> children;
  children.reserve(child_ranges.size());
  for (const auto& [child_begin, child_end] : child_ranges) {
    children.push_back(BuildNode(child_begin, child_end, rng));
  }
  nodes_[index].children = std::move(children);
  return index;
}

void KMeansTree::SearchKnn(const float* query, uint32_t max_checks,
                           DistanceOracle& oracle, CandidatePool& pool) const {
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, QueueGreater>
      frontier;
  frontier.push({0.0f, 0});
  uint32_t checks = 0;
  while (!frontier.empty() && checks < max_checks) {
    const uint32_t current = frontier.top().node;
    frontier.pop();
    const Node& node = nodes_[current];
    if (node.children.empty()) {
      for (uint32_t i = node.begin; i < node.end && checks < max_checks;
           ++i) {
        pool.Insert(Neighbor(ids_[i], oracle.ToQuery(query, ids_[i])));
        ++checks;
      }
      continue;
    }
    for (uint32_t child : node.children) {
      // Centroid comparisons cost one distance evaluation each.
      const float dist = oracle.ToVector(query, nodes_[child].centroid.data());
      ++checks;
      frontier.push({dist, child});
    }
  }
}

size_t KMeansTree::MemoryBytes() const {
  size_t bytes = ids_.size() * sizeof(uint32_t);
  for (const auto& node : nodes_) {
    bytes += sizeof(Node) + node.centroid.size() * sizeof(float) +
             node.children.size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace weavess
