#include "tree/vp_tree.h"

#include <algorithm>
#include <cmath>

namespace weavess {

VpTree::VpTree(const Dataset& data, const Params& params)
    : data_(&data), params_(params) {
  WEAVESS_CHECK(data.size() > 0);
  ids_.resize(data.size());
  for (uint32_t i = 0; i < data.size(); ++i) ids_[i] = i;
  Rng rng(params.seed);
  BuildNode(0, data.size(), rng);
}

uint32_t VpTree::BuildNode(uint32_t begin, uint32_t end, Rng& rng) {
  const uint32_t index = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[index].begin = begin;
  nodes_[index].end = end;
  if (end - begin <= params_.leaf_size) {
    return index;  // leaf
  }
  // Pick a random vantage point and move it to the front of the range.
  const uint32_t pick =
      begin + static_cast<uint32_t>(rng.NextBounded(end - begin));
  std::swap(ids_[begin], ids_[pick]);
  const uint32_t vantage = ids_[begin];
  const float* vantage_row = data_->Row(vantage);

  // Median split by distance to the vantage point (squared distances are
  // order-equivalent). The vantage point itself goes to the inside child.
  const uint32_t lo = begin + 1;
  std::vector<std::pair<float, uint32_t>> scored;
  scored.reserve(end - lo);
  for (uint32_t i = lo; i < end; ++i) {
    scored.emplace_back(
        L2Sqr(vantage_row, data_->Row(ids_[i]), data_->dim()), ids_[i]);
  }
  const uint32_t mid_offset = static_cast<uint32_t>(scored.size() / 2);
  std::nth_element(scored.begin(), scored.begin() + mid_offset, scored.end());
  const float radius = scored[mid_offset].first;
  // nth_element leaves scored partitioned around the median: entries before
  // mid_offset are <= radius, entries from mid_offset on are >= radius.
  uint32_t write = lo;
  for (const auto& [dist, id] : scored) ids_[write++] = id;
  uint32_t mid = lo + mid_offset;
  if (mid == lo) mid = lo + 1;  // degenerate: keep both children non-empty

  const uint32_t inside = BuildNode(begin + 1, mid, rng);
  const uint32_t outside = BuildNode(mid, end, rng);
  Node& node = nodes_[index];
  node.vantage = vantage;
  node.radius = radius;
  node.inside = inside;
  node.outside = outside;
  return index;
}

void VpTree::SearchKnn(const float* query, uint32_t k, uint32_t max_checks,
                       DistanceOracle& oracle, CandidatePool& pool) const {
  uint32_t checks = 0;
  // Explicit stack of node indices; tau-pruned depth-first traversal.
  std::vector<uint32_t> stack = {0};
  while (!stack.empty() && checks < max_checks) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.inside == 0) {  // leaf
      for (uint32_t i = node.begin; i < node.end && checks < max_checks;
           ++i) {
        pool.Insert(Neighbor(ids_[i], oracle.ToQuery(query, ids_[i])));
        ++checks;
      }
      continue;
    }
    const float dist = oracle.ToQuery(query, node.vantage);
    ++checks;
    pool.Insert(Neighbor(node.vantage, dist));
    const float tau =
        pool.size() >= k ? pool[std::min<size_t>(k, pool.size()) - 1].distance
                         : std::numeric_limits<float>::infinity();
    // With squared distances the triangle-inequality prune becomes
    // (sqrt(dist) ± sqrt(tau))^2 vs radius; compare in the sqrt domain.
    const float d = std::sqrt(dist);
    const float t = std::sqrt(tau);
    const float r = std::sqrt(node.radius);
    const bool visit_inside = d - t <= r;
    const bool visit_outside = d + t >= r;
    // Push the far side first so the near side is explored first.
    if (dist < node.radius) {
      if (visit_outside) stack.push_back(node.outside);
      if (visit_inside) stack.push_back(node.inside);
    } else {
      if (visit_inside) stack.push_back(node.inside);
      if (visit_outside) stack.push_back(node.outside);
    }
  }
}

size_t VpTree::MemoryBytes() const {
  return nodes_.size() * sizeof(Node) + ids_.size() * sizeof(uint32_t);
}

}  // namespace weavess
