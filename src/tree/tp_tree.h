// Trinary-projection-style partitioning: the dataset-division component
// (C1, Definition 4.1) of SPTAG's divide-and-conquer construction. Each
// split projects points onto a sparse axis combination with ±1 weights and
// cuts at the median; recursing until subsets are small yields the leaves
// over which exact sub-KNNGs are built and merged.
#ifndef WEAVESS_TREE_TP_TREE_H_
#define WEAVESS_TREE_TP_TREE_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/rng.h"

namespace weavess {

struct TpTreeParams {
  /// Recursion stops when a subset has at most this many points.
  uint32_t max_leaf_size = 500;
  /// Number of coordinate axes combined into each partition hyperplane.
  uint32_t axes_per_split = 5;
};

/// Recursively divides row ids [0, data.size()) into subsets of at most
/// `params.max_leaf_size` points. Every id appears in exactly one subset.
/// Randomness (axis choice, ±1 weights) comes from `rng`, so repeated calls
/// produce the diverse partitions SPTAG unions across iterations.
std::vector<std::vector<uint32_t>> TpTreePartition(const Dataset& data,
                                                   const TpTreeParams& params,
                                                   Rng& rng);

/// Same, but divides only the given subset of ids.
std::vector<std::vector<uint32_t>> TpTreePartitionSubset(
    const Dataset& data, std::vector<uint32_t> ids, const TpTreeParams& params,
    Rng& rng);

}  // namespace weavess

#endif  // WEAVESS_TREE_TP_TREE_H_
