// Balanced k-means tree: the seed-acquisition structure of SPTAG-BKT. Each
// internal node partitions its points into `branching` clusters by Lloyd's
// algorithm with balance regularization (oversized clusters shed their
// farthest members), so leaves have near-uniform size.
#ifndef WEAVESS_TREE_KMEANS_TREE_H_
#define WEAVESS_TREE_KMEANS_TREE_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/neighbor.h"
#include "core/rng.h"

namespace weavess {

/// Balanced Lloyd's clustering of `count` ids (rows of `data`) into `k`
/// buckets: centers start from random distinct members, a cluster stops
/// accepting members beyond 2x the average size, empty clusters are
/// reseeded from a random member each update step, and a degenerate
/// single-cluster outcome (identical points) falls back to round-robin.
/// Bucket assignment is stable (members keep their input order) and a pure
/// function of (data, ids, k, iterations, rng state); buckets may be empty.
/// This is the splitting step of KMeansTree::BuildNode, exposed so the
/// shard partitioner (src/shard/partitioner.h) reuses the same machinery.
std::vector<std::vector<uint32_t>> BalancedKMeansAssign(
    const Dataset& data, const uint32_t* ids, uint32_t count, uint32_t k,
    uint32_t lloyd_iterations, Rng& rng);

class KMeansTree {
 public:
  struct Params {
    uint32_t branching = 8;
    uint32_t leaf_size = 32;
    uint32_t lloyd_iterations = 4;
    uint64_t seed = 1;
  };

  KMeansTree(const Dataset& data, const Params& params);

  /// Greedy best-first descent over centroids, collecting leaf points until
  /// `max_checks` distance evaluations are spent. Centroid comparisons are
  /// counted (they are real distance computations at query time).
  void SearchKnn(const float* query, uint32_t max_checks,
                 DistanceOracle& oracle, CandidatePool& pool) const;

  size_t MemoryBytes() const;

 private:
  struct Node {
    std::vector<float> centroid;  // mean of the subtree's points
    std::vector<uint32_t> children;  // empty => leaf
    uint32_t begin = 0;              // leaf payload range in ids_
    uint32_t end = 0;
  };

  uint32_t BuildNode(uint32_t begin, uint32_t end, Rng& rng);

  const Dataset* data_;
  Params params_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> ids_;
};

}  // namespace weavess

#endif  // WEAVESS_TREE_KMEANS_TREE_H_
