// Balanced k-means tree: the seed-acquisition structure of SPTAG-BKT. Each
// internal node partitions its points into `branching` clusters by Lloyd's
// algorithm with balance regularization (oversized clusters shed their
// farthest members), so leaves have near-uniform size.
#ifndef WEAVESS_TREE_KMEANS_TREE_H_
#define WEAVESS_TREE_KMEANS_TREE_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/neighbor.h"
#include "core/rng.h"

namespace weavess {

class KMeansTree {
 public:
  struct Params {
    uint32_t branching = 8;
    uint32_t leaf_size = 32;
    uint32_t lloyd_iterations = 4;
    uint64_t seed = 1;
  };

  KMeansTree(const Dataset& data, const Params& params);

  /// Greedy best-first descent over centroids, collecting leaf points until
  /// `max_checks` distance evaluations are spent. Centroid comparisons are
  /// counted (they are real distance computations at query time).
  void SearchKnn(const float* query, uint32_t max_checks,
                 DistanceOracle& oracle, CandidatePool& pool) const;

  size_t MemoryBytes() const;

 private:
  struct Node {
    std::vector<float> centroid;  // mean of the subtree's points
    std::vector<uint32_t> children;  // empty => leaf
    uint32_t begin = 0;              // leaf payload range in ids_
    uint32_t end = 0;
  };

  uint32_t BuildNode(uint32_t begin, uint32_t end, Rng& rng);

  const Dataset* data_;
  Params params_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> ids_;
};

}  // namespace weavess

#endif  // WEAVESS_TREE_KMEANS_TREE_H_
