#include "tree/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

namespace weavess {

namespace {

// Priority-queue entry for best-bin-first traversal: node plus lower bound
// on the query's distance to the node's half-space.
struct Branch {
  float bound;
  uint32_t node;
};
struct BranchGreater {
  bool operator()(const Branch& a, const Branch& b) const {
    return a.bound > b.bound;
  }
};

constexpr uint32_t kVarianceSampleSize = 128;

}  // namespace

KdTree::KdTree(const Dataset& data, const Params& params)
    : data_(&data), params_(params) {
  WEAVESS_CHECK(data.size() > 0);
  ids_.resize(data.size());
  for (uint32_t i = 0; i < data.size(); ++i) ids_[i] = i;
  Rng rng(params.seed);
  nodes_.reserve(2 * data.size() / std::max(1u, params.leaf_size) + 2);
  BuildNode(0, data.size(), rng);
}

uint32_t KdTree::ChooseSplitDim(uint32_t begin, uint32_t end, Rng& rng,
                                float* split_value) const {
  const uint32_t dim = data_->dim();
  const uint32_t count = end - begin;
  const uint32_t sample = std::min(count, kVarianceSampleSize);
  // Mean and variance per dimension over a sample of the node's points.
  std::vector<double> mean(dim, 0.0), var(dim, 0.0);
  for (uint32_t s = 0; s < sample; ++s) {
    const float* row = data_->Row(ids_[begin + s * count / sample]);
    for (uint32_t d = 0; d < dim; ++d) mean[d] += row[d];
  }
  for (uint32_t d = 0; d < dim; ++d) mean[d] /= sample;
  for (uint32_t s = 0; s < sample; ++s) {
    const float* row = data_->Row(ids_[begin + s * count / sample]);
    for (uint32_t d = 0; d < dim; ++d) {
      const double diff = row[d] - mean[d];
      var[d] += diff * diff;
    }
  }
  // Pick randomly among the top-variance dimensions.
  const uint32_t top = std::min(params_.num_candidate_dims, dim);
  std::vector<uint32_t> dims(dim);
  for (uint32_t d = 0; d < dim; ++d) dims[d] = d;
  std::partial_sort(dims.begin(), dims.begin() + top, dims.end(),
                    [&var](uint32_t a, uint32_t b) { return var[a] > var[b]; });
  const uint32_t chosen = dims[rng.NextBounded(top)];
  *split_value = static_cast<float>(mean[chosen]);
  return chosen;
}

uint32_t KdTree::BuildNode(uint32_t begin, uint32_t end, Rng& rng) {
  const uint32_t index = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  Node& node = nodes_.back();
  node.begin = begin;
  node.end = end;
  if (end - begin <= params_.leaf_size) {
    return index;  // leaf
  }
  float split_value = 0.0f;
  const uint32_t split_dim = ChooseSplitDim(begin, end, rng, &split_value);
  auto begin_it = ids_.begin() + begin;
  auto end_it = ids_.begin() + end;
  auto mid_it = std::partition(
      begin_it, end_it, [this, split_dim, split_value](uint32_t id) {
        return data_->Row(id)[split_dim] < split_value;
      });
  // Degenerate split (all values equal): fall back to an even split so the
  // recursion always terminates.
  if (mid_it == begin_it || mid_it == end_it) {
    mid_it = begin_it + (end - begin) / 2;
  }
  const uint32_t mid = begin + static_cast<uint32_t>(mid_it - begin_it);
  const uint32_t left = BuildNode(begin, mid, rng);
  const uint32_t right = BuildNode(mid, end, rng);
  // `node` reference may be invalidated by vector growth; reindex.
  Node& fixed = nodes_[index];
  fixed.split_dim = split_dim;
  fixed.split_value = split_value;
  fixed.left = left;
  fixed.right = right;
  return index;
}

void KdTree::SearchKnn(const float* query, uint32_t max_checks,
                       DistanceOracle& oracle, CandidatePool& pool) const {
  std::priority_queue<Branch, std::vector<Branch>, BranchGreater> branches;
  branches.push({0.0f, 0});
  uint32_t checks = 0;
  while (!branches.empty() && checks < max_checks) {
    const Branch branch = branches.top();
    branches.pop();
    uint32_t current = branch.node;
    float bound = branch.bound;
    // Descend to a leaf, pushing the far side of each split.
    while (nodes_[current].left != 0) {
      const Node& node = nodes_[current];
      const float delta = query[node.split_dim] - node.split_value;
      const uint32_t near_child = delta < 0 ? node.left : node.right;
      const uint32_t far_child = delta < 0 ? node.right : node.left;
      branches.push({bound + delta * delta, far_child});
      current = near_child;
    }
    const Node& leaf = nodes_[current];
    for (uint32_t i = leaf.begin; i < leaf.end && checks < max_checks; ++i) {
      const uint32_t id = ids_[i];
      pool.Insert(Neighbor(id, oracle.ToQuery(query, id)));
      ++checks;
    }
  }
}

std::vector<uint32_t> KdTree::LeafIds(const float* query) const {
  uint32_t current = 0;
  while (nodes_[current].left != 0) {
    const Node& node = nodes_[current];
    current = query[node.split_dim] < node.split_value ? node.left
                                                       : node.right;
  }
  const Node& leaf = nodes_[current];
  return std::vector<uint32_t>(ids_.begin() + leaf.begin,
                               ids_.begin() + leaf.end);
}

size_t KdTree::MemoryBytes() const {
  return nodes_.size() * sizeof(Node) + ids_.size() * sizeof(uint32_t);
}

KdForest::KdForest(const Dataset& data, uint32_t num_trees, uint32_t leaf_size,
                   uint64_t seed) {
  WEAVESS_CHECK(num_trees > 0);
  trees_.reserve(num_trees);
  for (uint32_t t = 0; t < num_trees; ++t) {
    KdTree::Params params;
    params.leaf_size = leaf_size;
    params.seed = seed + 0x9e3779b9ULL * (t + 1);
    trees_.emplace_back(data, params);
  }
}

void KdForest::SearchKnn(const float* query, uint32_t max_checks,
                         DistanceOracle& oracle, CandidatePool& pool) const {
  for (const auto& tree : trees_) {
    tree.SearchKnn(query, max_checks, oracle, pool);
  }
}

std::vector<uint32_t> KdForest::LeafIds(const float* query) const {
  std::vector<uint32_t> merged;
  std::unordered_set<uint32_t> seen;
  for (const auto& tree : trees_) {
    for (uint32_t id : tree.LeafIds(query)) {
      if (seen.insert(id).second) merged.push_back(id);
    }
  }
  return merged;
}

size_t KdForest::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& tree : trees_) bytes += tree.MemoryBytes();
  return bytes;
}

}  // namespace weavess
