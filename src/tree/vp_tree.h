// Vantage-point tree: the metric tree NGT attaches for seed acquisition
// (C4/C6). Each internal node stores a vantage point and the median distance
// of its subtree's points to it; search prunes with the triangle inequality.
#ifndef WEAVESS_TREE_VP_TREE_H_
#define WEAVESS_TREE_VP_TREE_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/neighbor.h"
#include "core/rng.h"

namespace weavess {

class VpTree {
 public:
  struct Params {
    uint32_t leaf_size = 16;
    uint64_t seed = 1;
  };

  VpTree(const Dataset& data, const Params& params);

  /// Approximate k-NN with a point-comparison budget. Distances here are
  /// *counted* against the oracle — the paper observes that tree-based seed
  /// acquisition pays real distance evaluations (§5.4, C4_NGT).
  void SearchKnn(const float* query, uint32_t k, uint32_t max_checks,
                 DistanceOracle& oracle, CandidatePool& pool) const;

  size_t MemoryBytes() const;

 private:
  struct Node {
    uint32_t vantage = 0;  // dataset id of the vantage point
    float radius = 0.0f;   // median distance (squared) to vantage
    uint32_t inside = 0;   // child indices; 0 = absent (node 0 is root)
    uint32_t outside = 0;
    uint32_t begin = 0;    // leaf payload in ids_ (leaf iff inside == 0)
    uint32_t end = 0;
  };

  uint32_t BuildNode(uint32_t begin, uint32_t end, Rng& rng);

  const Dataset* data_;
  Params params_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> ids_;
};

}  // namespace weavess

#endif  // WEAVESS_TREE_VP_TREE_H_
