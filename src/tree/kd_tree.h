// Randomized KD-tree and KD-forest: the auxiliary index used by EFANNA for
// neighbor initialization (C1) and by EFANNA / SPTAG-KDT / HCNNG for seed
// acquisition (C4/C6). Splits choose a random dimension among the highest-
// variance dimensions of the node's points (FLANN-style randomization), so a
// forest of trees gives diverse, complementary partitions.
#ifndef WEAVESS_TREE_KD_TREE_H_
#define WEAVESS_TREE_KD_TREE_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/distance.h"
#include "core/neighbor.h"
#include "core/rng.h"

namespace weavess {

class KdTree {
 public:
  struct Params {
    uint32_t leaf_size = 16;
    /// Split dimension is sampled among this many top-variance dimensions.
    uint32_t num_candidate_dims = 5;
    uint64_t seed = 1;
  };

  /// Builds over all rows of `data`. The dataset must outlive the tree.
  KdTree(const Dataset& data, const Params& params);

  /// Best-bin-first approximate k-NN: descends to the query leaf, then
  /// explores the closest unvisited branches until `max_checks` points have
  /// been compared. Results are inserted into `pool`.
  void SearchKnn(const float* query, uint32_t max_checks,
                 DistanceOracle& oracle, CandidatePool& pool) const;

  /// Ids stored in the leaf the query descends to. No distance evaluations:
  /// only coordinate comparisons (this is how HCNNG obtains cheap seeds).
  std::vector<uint32_t> LeafIds(const float* query) const;

  size_t MemoryBytes() const;

 private:
  struct Node {
    // Internal node when left != 0; leaf stores [begin, end) into ids_.
    uint32_t split_dim = 0;
    float split_value = 0.0f;
    uint32_t left = 0;   // child index; 0 means leaf (node 0 is the root)
    uint32_t right = 0;
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  uint32_t BuildNode(uint32_t begin, uint32_t end, Rng& rng);
  uint32_t ChooseSplitDim(uint32_t begin, uint32_t end, Rng& rng,
                          float* split_value) const;

  const Dataset* data_;
  Params params_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> ids_;
};

/// A forest of independently randomized KD-trees searched jointly.
class KdForest {
 public:
  KdForest(const Dataset& data, uint32_t num_trees, uint32_t leaf_size,
           uint64_t seed);

  /// Merges best-bin-first results from every tree into `pool`;
  /// `max_checks` is the per-tree point-comparison budget.
  void SearchKnn(const float* query, uint32_t max_checks,
                 DistanceOracle& oracle, CandidatePool& pool) const;

  /// Union of the query's leaf ids over all trees (de-duplicated).
  std::vector<uint32_t> LeafIds(const float* query) const;

  uint32_t num_trees() const { return static_cast<uint32_t>(trees_.size()); }
  size_t MemoryBytes() const;

 private:
  std::vector<KdTree> trees_;
};

}  // namespace weavess

#endif  // WEAVESS_TREE_KD_TREE_H_
