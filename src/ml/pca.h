// ML3 [78] surrogate (DESIGN.md §2): dimensionality reduction that
// preserves local geometry before graph construction. The paper's learned
// map is replaced by PCA (power iteration with deflation) — the canonical
// linear local-geometry-preserving projection. Reproduces the §5.5 shape:
// large extra preprocessing time and memory for a better speedup-recall
// tradeoff (distances in the reduced space are cheaper).
#ifndef WEAVESS_ML_PCA_H_
#define WEAVESS_ML_PCA_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"

namespace weavess {

class PcaModel {
 public:
  /// Fits `components` principal components of `data` by power iteration
  /// with deflation (`iterations` rounds each).
  PcaModel(const Dataset& data, uint32_t components,
           uint32_t iterations = 30, uint64_t seed = 11);

  /// Projects a dataset into the component space.
  Dataset Project(const Dataset& data) const;

  /// Projects a single vector; `out` must hold `num_components()` floats.
  void ProjectVector(const float* vec, float* out) const;

  uint32_t num_components() const { return components_; }
  uint32_t input_dim() const { return dim_; }

  /// Fraction of total variance captured per component (descending).
  const std::vector<float>& explained_variance() const { return variance_; }

  size_t MemoryBytes() const {
    return (basis_.size() + mean_.size() + variance_.size()) * sizeof(float);
  }

 private:
  uint32_t dim_;
  uint32_t components_;
  std::vector<float> mean_;
  std::vector<float> basis_;  // components_ x dim_, row-major
  std::vector<float> variance_;
};

}  // namespace weavess

#endif  // WEAVESS_ML_PCA_H_
