#include "ml/pca.h"

#include <cmath>

#include "core/check.h"
#include "core/distance.h"
#include "core/rng.h"

namespace weavess {

PcaModel::PcaModel(const Dataset& data, uint32_t components,
                   uint32_t iterations, uint64_t seed)
    : dim_(data.dim()), components_(components) {
  WEAVESS_CHECK(components >= 1 && components <= data.dim());
  WEAVESS_CHECK(data.size() >= 2);
  mean_ = data.Mean();

  // Centered copy (double accumulation happens per product below).
  const uint32_t n = data.size();
  std::vector<float> centered(static_cast<size_t>(n) * dim_);
  for (uint32_t i = 0; i < n; ++i) {
    const float* row = data.Row(i);
    float* out = centered.data() + static_cast<size_t>(i) * dim_;
    for (uint32_t d = 0; d < dim_; ++d) out[d] = row[d] - mean_[d];
  }
  double total_variance = 0.0;
  for (const float v : centered) {
    total_variance += static_cast<double>(v) * v;
  }
  total_variance /= n;

  basis_.assign(static_cast<size_t>(components_) * dim_, 0.0f);
  variance_.assign(components_, 0.0f);
  Rng rng(seed);
  std::vector<double> vec(dim_), next(dim_);
  for (uint32_t c = 0; c < components_; ++c) {
    for (auto& v : vec) v = rng.NextGaussian();
    double eigen = 0.0;
    for (uint32_t iter = 0; iter < iterations; ++iter) {
      // next = (X^T X / n) vec  computed as two passes over the rows.
      std::fill(next.begin(), next.end(), 0.0);
      for (uint32_t i = 0; i < n; ++i) {
        const float* row = centered.data() + static_cast<size_t>(i) * dim_;
        double dot = 0.0;
        for (uint32_t d = 0; d < dim_; ++d) dot += row[d] * vec[d];
        for (uint32_t d = 0; d < dim_; ++d) next[d] += dot * row[d];
      }
      double norm = 0.0;
      for (uint32_t d = 0; d < dim_; ++d) {
        next[d] /= n;
        norm += next[d] * next[d];
      }
      norm = std::sqrt(norm);
      if (norm <= 1e-12) break;  // data exhausted: remaining variance ~ 0
      eigen = norm;
      for (uint32_t d = 0; d < dim_; ++d) vec[d] = next[d] / norm;
    }
    float* basis_row = basis_.data() + static_cast<size_t>(c) * dim_;
    for (uint32_t d = 0; d < dim_; ++d) {
      basis_row[d] = static_cast<float>(vec[d]);
    }
    variance_[c] = total_variance > 0.0
                       ? static_cast<float>(eigen / total_variance)
                       : 0.0f;
    // Deflate: remove the found component from every row.
    for (uint32_t i = 0; i < n; ++i) {
      float* row = centered.data() + static_cast<size_t>(i) * dim_;
      const float dot = Dot(row, basis_row, dim_);
      for (uint32_t d = 0; d < dim_; ++d) row[d] -= dot * basis_row[d];
    }
  }
}

void PcaModel::ProjectVector(const float* vec, float* out) const {
  std::vector<float> centered(dim_);
  for (uint32_t d = 0; d < dim_; ++d) centered[d] = vec[d] - mean_[d];
  for (uint32_t c = 0; c < components_; ++c) {
    out[c] = Dot(centered.data(),
                 basis_.data() + static_cast<size_t>(c) * dim_, dim_);
  }
}

Dataset PcaModel::Project(const Dataset& data) const {
  WEAVESS_CHECK(data.dim() == dim_);
  Dataset projected = Dataset::Zeros(data.size(), components_);
  for (uint32_t i = 0; i < data.size(); ++i) {
    ProjectVector(data.Row(i), projected.MutableRow(i));
  }
  return projected;
}

}  // namespace weavess
