#include "ml/early_termination.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/distance.h"
#include "core/rng.h"
#include "core/timer.h"

namespace weavess {

namespace {

// Budget ladder used both to label training queries and to clamp
// predictions.
std::vector<uint32_t> Ladder(uint32_t probe, uint32_t max_pool) {
  std::vector<uint32_t> ladder;
  for (uint32_t v = probe; v < max_pool; v = v * 3 / 2 + 1) {
    ladder.push_back(v);
  }
  ladder.push_back(max_pool);
  return ladder;
}

}  // namespace

EarlyTerminationIndex::EarlyTerminationIndex(std::unique_ptr<AnnIndex> base,
                                             const Params& params)
    : base_(std::move(base)), params_(params) {
  WEAVESS_CHECK(base_ != nullptr);
  WEAVESS_CHECK(params.probe_pool >= 10);
}

EarlyTerminationIndex::~EarlyTerminationIndex() = default;

EarlyTerminationIndex::Features EarlyTerminationIndex::ProbeFeatures(
    SearchScratch& scratch, const float* query, uint32_t k,
    QueryStats* stats) const {
  SearchParams probe;
  probe.k = std::min(k, params_.probe_pool);
  probe.pool_size = params_.probe_pool;
  const std::vector<uint32_t> result =
      base_->SearchWith(scratch, query, probe, stats);
  Features f{1.0, 1.0};
  if (!result.empty()) {
    const float best =
        L2Sqr(query, data_->Row(result.front()), data_->dim());
    const float worst =
        L2Sqr(query, data_->Row(result.back()), data_->dim());
    f.probe_best = std::max(1e-12, static_cast<double>(best));
    f.probe_spread =
        best > 0.0f ? static_cast<double>(worst) / best : 1.0;
  }
  if (stats != nullptr) stats->distance_evals += 2;  // the feature probes
  return f;
}

double EarlyTerminationIndex::PredictPool(const Features& f) const {
  return weights_[0] + weights_[1] * std::log(f.probe_best) +
         weights_[2] * f.probe_spread;
}

void EarlyTerminationIndex::Build(const Dataset& data) {
  data_ = &data;
  base_->Build(data);
  Timer timer;

  // --- Training: per-query oracle labels (smallest budget whose top-1
  // matches the max-budget answer), regressed on probe features. ---
  Rng rng(params_.seed);
  const uint32_t train =
      std::min(params_.train_queries, data.size());
  const std::vector<uint32_t> picks = rng.SampleDistinct(data.size(), train);
  const std::vector<uint32_t> ladder =
      Ladder(params_.probe_pool, params_.max_pool);

  // Normal equations for 3 weights.
  SearchScratch scratch(data.size());
  double xtx[3][3] = {{0}};
  double xty[3] = {0};
  for (uint32_t pick : picks) {
    const float* query = data.Row(pick);
    const Features f = ProbeFeatures(scratch, query, /*k=*/1, nullptr);
    SearchParams full;
    full.k = 1;
    full.pool_size = params_.max_pool;
    const std::vector<uint32_t> oracle = base_->Search(query, full);
    if (oracle.empty()) continue;
    double label = params_.max_pool;
    for (uint32_t budget : ladder) {
      SearchParams trial;
      trial.k = 1;
      trial.pool_size = budget;
      const std::vector<uint32_t> result = base_->Search(query, trial);
      if (!result.empty() && result.front() == oracle.front()) {
        label = budget;
        break;
      }
    }
    const double x[3] = {1.0, std::log(f.probe_best), f.probe_spread};
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) xtx[a][b] += x[a] * x[b];
      xty[a] += x[a] * label;
    }
  }
  // Solve the 3x3 system by Gaussian elimination with a ridge term.
  for (int a = 0; a < 3; ++a) xtx[a][a] += 1e-6;
  double m[3][4];
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) m[a][b] = xtx[a][b];
    m[a][3] = xty[a];
  }
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r) {
      if (std::fabs(m[r][col]) > std::fabs(m[pivot][col])) pivot = r;
    }
    std::swap(m[col], m[pivot]);
    if (std::fabs(m[col][col]) < 1e-12) continue;
    for (int r = 0; r < 3; ++r) {
      if (r == col) continue;
      const double factor = m[r][col] / m[col][col];
      for (int c = col; c < 4; ++c) m[r][c] -= factor * m[col][c];
    }
  }
  for (int a = 0; a < 3; ++a) {
    weights_[a] = std::fabs(m[a][a]) < 1e-12 ? 0.0 : m[a][3] / m[a][a];
  }
  training_seconds_ = timer.Seconds();
  build_stats_ = base_->build_stats();
  build_stats_.seconds += training_seconds_;
}

std::vector<uint32_t> EarlyTerminationIndex::SearchWith(
    SearchScratch& scratch, const float* query, const SearchParams& params,
    QueryStats* stats) const {
  QueryStats probe_stats;
  const Features f = ProbeFeatures(scratch, query, params.k, &probe_stats);
  // The caller's pool_size acts as a *multiplier knob* on the predicted
  // budget, preserving the sweepable tradeoff: scale = pool / 100.
  const double scale = static_cast<double>(params.pool_size) / 100.0;
  const double predicted = PredictPool(f) * scale;
  SearchParams adaptive = params;
  adaptive.pool_size = static_cast<uint32_t>(
      std::clamp(predicted, static_cast<double>(params_.probe_pool),
                 static_cast<double>(params_.max_pool)));
  adaptive.pool_size = std::max(adaptive.pool_size, params.k);
  QueryStats main_stats;
  std::vector<uint32_t> result =
      base_->SearchWith(scratch, query, adaptive, &main_stats);
  if (stats != nullptr) {
    stats->distance_evals =
        probe_stats.distance_evals + main_stats.distance_evals;
    stats->hops = probe_stats.hops + main_stats.hops;
    stats->truncated = probe_stats.truncated || main_stats.truncated;
  }
  return result;
}

size_t EarlyTerminationIndex::IndexMemoryBytes() const {
  return base_->IndexMemoryBytes() + sizeof(weights_);
}

}  // namespace weavess
