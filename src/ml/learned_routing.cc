#include "ml/learned_routing.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/distance.h"
#include "core/timer.h"

namespace weavess {

LearnedRoutingIndex::LearnedRoutingIndex(std::unique_ptr<AnnIndex> base,
                                         const Params& params)
    : base_(std::move(base)), params_(params) {
  WEAVESS_CHECK(base_ != nullptr);
  WEAVESS_CHECK(params.num_landmarks >= 4);
  WEAVESS_CHECK(params.evaluate_fraction > 0.0f &&
                params.evaluate_fraction <= 1.0f);
}

LearnedRoutingIndex::~LearnedRoutingIndex() = default;

float LearnedRoutingIndex::SurrogateDistance(const float* query_embedding,
                                             uint32_t vertex) const {
  const float* row =
      embeddings_.data() +
      static_cast<size_t>(vertex) * params_.num_landmarks;
  return L2Sqr(query_embedding, row, params_.num_landmarks);
}

void LearnedRoutingIndex::Build(const Dataset& data) {
  data_ = &data;
  base_->Build(data);
  Timer timer;

  // --- "Training": landmark selection + full embedding table. This is the
  // deliberately heavy preprocessing that Table 24 charges to ML1. ---
  Rng rng(params_.seed);
  const uint32_t m = std::min(params_.num_landmarks, data.size());
  params_.num_landmarks = m;
  landmarks_ = rng.SampleDistinct(data.size(), m);
  embeddings_.resize(static_cast<size_t>(data.size()) * m);
  for (uint32_t i = 0; i < data.size(); ++i) {
    float* row = embeddings_.data() + static_cast<size_t>(i) * m;
    for (uint32_t l = 0; l < m; ++l) {
      row[l] = std::sqrt(
          L2Sqr(data.Row(i), data.Row(landmarks_[l]), data.dim()));
    }
  }

  // Medoid entry point (ML1 routes from a fixed entry, like NSG).
  const std::vector<float> mean = data.Mean();
  float best = std::numeric_limits<float>::infinity();
  for (uint32_t i = 0; i < data.size(); ++i) {
    const float dist = L2Sqr(mean.data(), data.Row(i), data.dim());
    if (dist < best) {
      best = dist;
      entry_point_ = i;
    }
  }

  preprocessing_seconds_ = timer.Seconds();
  build_stats_ = base_->build_stats();
  build_stats_.seconds += preprocessing_seconds_;
}

std::vector<uint32_t> LearnedRoutingIndex::SearchWith(
    SearchScratch& scratch, const float* query, const SearchParams& params,
    QueryStats* stats) const {
  WEAVESS_CHECK(data_ != nullptr);
  const Graph& graph = base_->graph();
  SearchContext& ctx = scratch.ctx;
  ctx.BeginQuery();
  DistanceCounter counter;
  DistanceOracle oracle(*data_, &counter);
  ctx.ArmBudget(params.max_distance_evals, params.time_budget_us, &counter,
                params.clock);

  // Query embedding: m true distance evaluations, paid once per query.
  const uint32_t m = params_.num_landmarks;
  std::vector<float> query_embedding(m);
  for (uint32_t l = 0; l < m; ++l) {
    query_embedding[l] =
        std::sqrt(oracle.ToQuery(query, landmarks_[l]));
  }

  CandidatePool& pool = scratch.pool;
  pool.Reset(std::max(params.pool_size, params.k));
  SeedPool({entry_point_}, query, oracle, ctx, pool);

  // Best-first search with surrogate-guided neighbor filtering: only the
  // top `evaluate_fraction` of each adjacency list (ranked by embedding
  // distance) receives a true distance evaluation.
  std::vector<std::pair<float, uint32_t>> ranked;
  size_t next;
  while ((next = pool.NextUnchecked()) != CandidatePool::kNpos) {
    if (ctx.BudgetExhausted()) {
      ctx.truncated = true;
      break;
    }
    const uint32_t current = pool[next].id;
    pool.MarkChecked(next);
    ++ctx.hops;
    const auto& neighbors = graph.Neighbors(current);
    ranked.clear();
    ranked.reserve(neighbors.size());
    for (uint32_t neighbor : neighbors) {
      if (ctx.visited.Visited(neighbor)) continue;
      ranked.emplace_back(SurrogateDistance(query_embedding.data(), neighbor),
                          neighbor);
    }
    const size_t evaluate = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(
               ranked.size() * params_.evaluate_fraction)));
    if (evaluate < ranked.size()) {
      std::partial_sort(ranked.begin(), ranked.begin() + evaluate,
                        ranked.end());
    }
    for (size_t i = 0; i < std::min(evaluate, ranked.size()); ++i) {
      const uint32_t neighbor = ranked[i].second;
      if (ctx.visited.CheckAndMark(neighbor)) continue;
      pool.Insert(Neighbor(neighbor, oracle.ToQuery(query, neighbor)));
    }
  }
  if (stats != nullptr) {
    stats->distance_evals = counter.count;
    stats->hops = ctx.hops;
    stats->truncated = ctx.truncated;
  }
  return ExtractTopK(pool, params.k);
}

size_t LearnedRoutingIndex::IndexMemoryBytes() const {
  return base_->IndexMemoryBytes() + embeddings_.size() * sizeof(float) +
         landmarks_.size() * sizeof(uint32_t);
}

}  // namespace weavess
