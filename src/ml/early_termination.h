// ML2 [59] — learned adaptive early termination. A lightweight regressor
// (least squares on search-state features, standing in for the paper's
// gradient-boosted trees; DESIGN.md §2) predicts, after a small fixed probe
// search, how large a candidate pool each individual query actually needs.
// Easy queries stop early; hard queries get a bigger budget. Reproduces the
// §5.5 finding: moderate extra index-processing time and memory for a
// latency reduction concentrated in the high-recall region.
#ifndef WEAVESS_ML_EARLY_TERMINATION_H_
#define WEAVESS_ML_EARLY_TERMINATION_H_

#include <memory>

#include "core/index.h"

namespace weavess {

class EarlyTerminationIndex : public AnnIndex {
 public:
  struct Params {
    /// Probe pool size L0 (the fixed minimum effort).
    uint32_t probe_pool = 20;
    /// Training queries sampled from the base data.
    uint32_t train_queries = 200;
    /// Budget ladder searched for per-query oracle labels.
    uint32_t max_pool = 800;
    uint64_t seed = 2024;
  };

  /// Wraps an unbuilt base index; Build() builds it and then trains the
  /// termination model (the extra IPT that Table 24 charges to ML2).
  EarlyTerminationIndex(std::unique_ptr<AnnIndex> base, const Params& params);
  ~EarlyTerminationIndex() override;

  void Build(const Dataset& data) override;
  std::vector<uint32_t> SearchWith(SearchScratch& scratch, const float* query,
                                   const SearchParams& params,
                                   QueryStats* stats = nullptr) const override;
  const Graph& graph() const override { return base_->graph(); }
  size_t IndexMemoryBytes() const override;
  BuildStats build_stats() const override { return build_stats_; }
  std::string name() const override { return base_->name() + "+ML2"; }

  /// Seconds spent training the model (on top of the base build).
  double training_seconds() const { return training_seconds_; }

 private:
  struct Features {
    double probe_best;   // best (squared) distance after the probe
    double probe_spread; // worst/best ratio within the probe pool
  };
  Features ProbeFeatures(SearchScratch& scratch, const float* query,
                         uint32_t k, QueryStats* stats) const;
  double PredictPool(const Features& f) const;

  std::unique_ptr<AnnIndex> base_;
  Params params_;
  const Dataset* data_ = nullptr;
  // Linear model: pool ≈ w0 + w1 * log(probe_best) + w2 * probe_spread.
  double weights_[3] = {0.0, 0.0, 0.0};
  double training_seconds_ = 0.0;
  BuildStats build_stats_;
};

}  // namespace weavess

#endif  // WEAVESS_ML_EARLY_TERMINATION_H_
