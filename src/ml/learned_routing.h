// ML1 [14] surrogate — learned routing. The paper's GPU-trained vertex
// representations are replaced by a landmark (pivot) embedding with the
// same cost profile and mechanism (DESIGN.md §2): every vertex stores its
// distances to m landmarks; routing ranks a vertex's neighbors by the
// cheap embedding-space distance to the query and spends true distance
// evaluations only on the most promising fraction. Preprocessing computes
// n·m true distances and stores n·m floats — reproducing §5.5's large
// index-processing time and memory consumption for a better
// speedup-vs-recall tradeoff.
#ifndef WEAVESS_ML_LEARNED_ROUTING_H_
#define WEAVESS_ML_LEARNED_ROUTING_H_

#include <memory>
#include <vector>

#include "core/index.h"
#include "core/rng.h"
#include "search/router.h"

namespace weavess {

class LearnedRoutingIndex : public AnnIndex {
 public:
  struct Params {
    /// Landmark count m (embedding dimension). Memory is n·m floats.
    uint32_t num_landmarks = 96;
    /// Fraction of each adjacency list evaluated exactly (ranked by the
    /// embedding surrogate); the rest is skipped.
    float evaluate_fraction = 0.5f;
    uint64_t seed = 2024;
  };

  /// Wraps an unbuilt base index (the paper applies ML1 to NSG / NSW).
  LearnedRoutingIndex(std::unique_ptr<AnnIndex> base, const Params& params);
  ~LearnedRoutingIndex() override;

  void Build(const Dataset& data) override;
  std::vector<uint32_t> SearchWith(SearchScratch& scratch, const float* query,
                                   const SearchParams& params,
                                   QueryStats* stats = nullptr) const override;
  const Graph& graph() const override { return base_->graph(); }
  size_t IndexMemoryBytes() const override;
  BuildStats build_stats() const override { return build_stats_; }
  std::string name() const override { return base_->name() + "+ML1"; }

  double preprocessing_seconds() const { return preprocessing_seconds_; }

 private:
  // Squared l2 between a vertex's stored embedding and the query embedding.
  float SurrogateDistance(const float* query_embedding, uint32_t vertex) const;

  std::unique_ptr<AnnIndex> base_;
  Params params_;
  const Dataset* data_ = nullptr;
  std::vector<uint32_t> landmarks_;
  std::vector<float> embeddings_;  // n x m, row-major
  uint32_t entry_point_ = 0;       // medoid
  double preprocessing_seconds_ = 0.0;
  BuildStats build_stats_;
};

}  // namespace weavess

#endif  // WEAVESS_ML_LEARNED_ROUTING_H_
